"""Churn benchmark: online scheduling across an arrival-rate grid.

Sweeps the online churn controller over a rate × duration grid on both
trace shapes (fat-tree and WAN), in scheduled and unscheduled mode, and
emits ``BENCH_churn.json``: per-cell quiescence, rounds, flips,
re-plans, restorations, transient violations, and wall-clock, plus the
machine/git provenance every BENCH artifact carries.

The grid is deliberately modest -- the artifact tracks the *shape* of
the scheduled-vs-unscheduled gap (zero vs nonzero violations, rounds
overhead, time to quiescence) across PRs, not absolute throughput.

Usage::

    PYTHONPATH=src python benchmarks/bench_churn.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from _provenance import provenance
from repro.churn import ChurnPolicy, generate_trace, run_churn

DEFAULT_OUT = pathlib.Path(__file__).parent / "results" / "BENCH_churn.json"

#: (kind, size, rate_per_s, duration_ms) grid cells.
FULL_GRID = [
    ("fat-tree", 4, 25.0, 400.0),
    ("fat-tree", 4, 50.0, 400.0),
    ("fat-tree", 4, 100.0, 400.0),
    ("fat-tree", 4, 50.0, 800.0),
    ("fat-tree", 6, 50.0, 400.0),
    ("wan", 24, 25.0, 400.0),
    ("wan", 24, 50.0, 400.0),
    ("wan", 24, 100.0, 400.0),
    ("wan", 48, 50.0, 400.0),
]
QUICK_GRID = [
    ("fat-tree", 4, 50.0, 400.0),
    ("wan", 24, 50.0, 400.0),
]

SEED = 7


def run_cell(kind: str, size: int, rate: float, duration: float, scheduled: bool) -> dict:
    trace = generate_trace(
        kind, size, SEED, rate_per_s=rate, duration_ms=duration
    )
    policy = ChurnPolicy(scheduled=scheduled)
    started = time.perf_counter()
    metrics = run_churn(trace, policy)
    wall_ms = (time.perf_counter() - started) * 1000.0
    summary = metrics.to_dict()
    summary.pop("lifecycles")  # per-request records would dwarf the artifact
    return {
        "kind": kind,
        "size": size,
        "rate_per_s": rate,
        "duration_ms": duration,
        "scheduled": scheduled,
        "wall_ms": round(wall_ms, 3),
        "metrics": summary,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="two-cell grid (CI smoke budget)")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    grid = QUICK_GRID if args.quick else FULL_GRID
    cells = []
    for kind, size, rate, duration in grid:
        for scheduled in (True, False):
            cell = run_cell(kind, size, rate, duration, scheduled)
            cells.append(cell)
            metrics = cell["metrics"]
            print(
                f"{kind}/{size} rate={rate:g}/s dur={duration:g}ms "
                f"{'sched' if scheduled else 'oneshot'}: "
                f"arrivals={metrics['arrivals']} rounds={metrics['rounds_issued']} "
                f"violations={metrics['transient_violations']} "
                f"ttq={metrics['time_to_quiescence_ms']:.1f}ms "
                f"wall={cell['wall_ms']:.0f}ms"
            )

    payload = {
        "benchmark": "churn",
        "seed": SEED,
        "quick": args.quick,
        "provenance": provenance(),
        "cells": cells,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")

    # sanity gates: every scheduled cell is clean, every run went quiet
    bad = [
        cell for cell in cells
        if not cell["metrics"]["quiescent"]
        or (cell["scheduled"] and cell["metrics"]["transient_violations"])
    ]
    for cell in bad:
        print(f"FAIL: {cell['kind']}/{cell['size']} scheduled={cell['scheduled']}")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
