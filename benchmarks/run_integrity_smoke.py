"""Integrity smoke: a hostile fleet must still reproduce the pool runner.

Phase A stands up a coordinator behind the REST surface with every cell
audited (``audit_fraction=1.0``) and throws a 4-worker process fleet at
it:

* ``liar`` computes two honest cells, then submits well-formed records
  with wrong numbers (checksums match -- only audit re-execution on a
  different worker can catch it);
* ``corruptor`` bit-damages its second submission *after* checksumming
  it (wire corruption -- the canonical-JSON checksum catches it at the
  door);
* ``honest-batch`` is healthy and submits in batches of 3;
* ``honest`` is healthy.

The spec also carries one OOM-rigged ``memhog`` cell under a 64 MB
address-space guard, so the smoke proves a poison-adjacent failure
(unbounded allocation) degrades into a deterministic, byte-stable error
record instead of killing workers.

The gate: the liar is quarantined by an audit mismatch, the corruptor by
an integrity reject, and ``results.jsonl`` is byte-identical to a
1-worker :class:`~repro.campaign.runner.CampaignRunner` baseline.

Phase B runs a thread fleet where every worker dies on the same cell:
after exactly ``poison_kill_threshold`` distinct-worker kills the cell
must be declared poisoned and terminally recorded while the survivor
finishes the campaign.  Non-zero exit on any failed gate, so it can
gate CI.

Usage::

    PYTHONPATH=src python benchmarks/run_integrity_smoke.py [--root DIR]
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import sys
import tempfile

from repro.campaign import CampaignRunner, CampaignSpec
from repro.campaign.fabric import (
    ChaosConfig,
    Coordinator,
    run_local_fleet,
    worker_main,
)
from repro.rest.api import build_campaign_api
from repro.rest.http_binding import RestHttpServer

SPEC = {
    "name": "integrity-smoke",
    "seed": 42,
    "schedulers": ["peacock", "greedy-slf"],
    "timeout_s": 30,
    "mem_limit_mb": 64,
    "families": [
        {"family": "reversal", "sizes": [6, 10, 14]},
        {"family": "sawtooth", "sizes": [10, 14]},
        {"family": "random-update", "sizes": [8, 12], "repeats": 2},
        # rigged: allocates ~512 MB against the 64 MB rlimit guard and
        # must fold as a deterministic MemoryError record, not an OOM kill
        {"family": "memhog", "sizes": [512]},
    ],
}

CHAOS = {
    "liar": ChaosConfig(lie_after_cells=2),
    "corruptor": ChaosConfig(corrupt_submits=(1,)),
    "honest-batch": None,
    "honest": None,
}

POISON_SPEC = {
    "name": "integrity-smoke-poison",
    "seed": 7,
    "schedulers": ["peacock", "greedy-slf"],
    "families": [{"family": "reversal", "sizes": [4, 6], "repeats": 2}],
}

POISON_KILL_THRESHOLD = 2


def phase_a(root: str, timeout_s: float) -> list[str]:
    """Hostile HTTP fleet: lies, corruption, batching, one OOM cell."""
    spec = CampaignSpec.from_dict(SPEC)
    n_cells = len(spec.expand())
    print(f"phase A: {n_cells} cells, 4 workers (liar + corruptor) "
          f"-> {root}")

    print("  running 1-worker pool baseline ...")
    runner = CampaignRunner(spec, root=f"{root}/baseline", workers=1)
    runner.run()
    baseline = runner.store.results_bytes()

    print("  running hostile fleet over HTTP, audit_fraction=1.0 ...")
    api = build_campaign_api(campaign_root=f"{root}/fleet")
    server = RestHttpServer(api, port=0)
    server.start()
    try:
        api.campaigns.serve({
            "spec": spec.to_dict(),
            "lease_ttl_s": 0.5,
            "heartbeat_interval_s": 0.1,
            "lease_cells": 2,
            "audit_fraction": 1.0,
        })
        coordinator = api.campaigns.fabric(spec.campaign_id)
        ctx = multiprocessing.get_context("spawn")
        procs = {
            name: ctx.Process(
                target=worker_main, args=(server.url, spec.campaign_id),
                kwargs={
                    "name": name,
                    "chaos": chaos.to_dict() if chaos else None,
                    "batch_cells": 3 if name == "honest-batch" else 1,
                },
                daemon=True,
            )
            for name, chaos in CHAOS.items()
        }
        for proc in procs.values():
            proc.start()
        finished = coordinator.wait(timeout_s=timeout_s)
        for proc in procs.values():
            proc.join(timeout=15)
        coordinator.close()
        status = coordinator.status()
        records = coordinator.store.records()
        fleet_bytes = coordinator.store.results_bytes()
    finally:
        server.stop()
        api.campaigns.close()

    fabric = status["fabric"]
    print("  fabric counters: " + ", ".join(
        f"{key}={fabric[key]}"
        for key in ("integrity_rejects", "audits_run", "audit_mismatches",
                    "quarantines", "batch_submits", "retries")
    ))
    print(f"  quarantined: {fabric['quarantined_workers']}")

    failures = []
    if not finished:
        failures.append(f"A: fleet did not finish within {timeout_s}s")
    if status["done"] != n_cells:
        failures.append(f"A: {status['done']}/{n_cells} cells done")
    if fleet_bytes != baseline:
        failures.append(
            "A: fleet results.jsonl differs from 1-worker baseline"
        )
    if fabric["integrity_rejects"] < 1:
        failures.append("A: no submission was rejected on checksum")
    if fabric["audit_mismatches"] < 1:
        failures.append("A: no audit mismatch was ever detected")
    if "liar" not in fabric["quarantined_workers"]:
        failures.append("A: the lying worker was never quarantined")
    if "corruptor" not in fabric["quarantined_workers"]:
        failures.append("A: the corrupting worker was never quarantined")
    if fabric["batch_submits"] < 1:
        failures.append("A: no batched submission was ever folded")
    rigged = sum(1 for c in spec.expand() if c.family == "memhog")
    oom = [r for r in records if "MemoryError" in str(r.get("detail", ""))]
    if len(oom) != rigged or any(r["status"] != "error" for r in oom):
        failures.append(
            "A: the rigged memhog cells did not fold as MemoryError records"
        )
    return failures


def phase_b(root: str, timeout_s: float) -> list[str]:
    """Poison containment: a cell that kills every worker it touches."""
    spec = CampaignSpec.from_dict(POISON_SPEC)
    poison_id = spec.expand()[0].cell_id
    n_cells = len(spec.expand())
    print(f"phase B: {n_cells} cells, poison cell {poison_id!r}, "
          f"kill threshold {POISON_KILL_THRESHOLD}")

    print("  running 1-worker pool baseline ...")
    runner = CampaignRunner(spec, root=f"{root}/poison-baseline", workers=1)
    runner.run()
    expected = [
        json.loads(line)
        for line in runner.store.results_bytes().decode().splitlines()
    ]

    print("  running 3-worker fleet that dies on the poison cell ...")
    coordinator = Coordinator(
        spec,
        root=f"{root}/poison-fleet",
        lease_ttl_s=0.5,
        heartbeat_interval_s=0.1,
        lease_cells=1,
        poison_kill_threshold=POISON_KILL_THRESHOLD,
    )
    chaos = {
        i: ChaosConfig(die_on_cells=(poison_id,), kill_mode="exception")
        for i in range(3)
    }
    summaries = run_local_fleet(coordinator, 3, chaos=chaos)
    coordinator.close()
    died = sum(1 for s in summaries if s["died"])
    print(f"  kills={coordinator.counters['kills']} "
          f"poisoned={coordinator.counters['poisoned_cells']} "
          f"workers_died={died}")

    failures = []
    records = coordinator.store.records()
    if not coordinator.finished:
        failures.append("B: fleet did not finish")
    if coordinator.counters["kills"] != POISON_KILL_THRESHOLD:
        failures.append(
            f"B: expected exactly {POISON_KILL_THRESHOLD} kills, saw "
            f"{coordinator.counters['kills']}"
        )
    if coordinator.counters["poisoned_cells"] != 1:
        failures.append("B: the poison cell was not contained")
    if not records or "poisoned" not in str(records[0].get("detail", "")):
        failures.append("B: no terminal poisoned record for the first cell")
    if records[1:] != expected[1:]:
        failures.append("B: surviving cells differ from pool baseline")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="work directory (default: a fresh temp dir)")
    parser.add_argument("--timeout", type=float, default=300.0)
    args = parser.parse_args(argv)
    root = args.root or tempfile.mkdtemp(prefix="integrity-smoke-")

    failures = phase_a(root, args.timeout)
    failures += phase_b(root, args.timeout)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("integrity-smoke OK: corruption rejected at the door, lies "
          "caught by audit, both hostile workers quarantined, the OOM "
          "cell degraded to a deterministic error, the poison cell was "
          "contained, and every surviving byte matches the pool baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
