"""E5 -- the price of consistency: barrier-fenced rounds vs RTT.

Each round costs one control-channel round trip plus the round's slowest
rule install plus barrier processing.  The analytic model
(:mod:`repro.core.cost`) predicts total update time as the sum over
rounds; this benchmark sweeps the channel RTT and compares model against
simulation, and shows the per-round decomposition for the Figure-1 WayUp
update.
"""

import pytest

from repro.core.api import schedule_update
from repro.core.cost import CostModel, round_time_breakdown, schedule_update_time
from repro.netlab.figure1 import figure1_problem, run_figure1


@pytest.mark.benchmark(group="e5-barriers")
def test_e5_model_vs_simulation_rtt_sweep(benchmark, emit):
    schedule = schedule_update(figure1_problem(), "wayup").schedule
    rows = []
    for one_way_ms in (0.5, 1.0, 2.0, 5.0, 10.0):
        result = run_figure1(
            algorithm="wayup", seed=1, channel_latency=one_way_ms
        )
        cost = CostModel(rtt_ms=2 * one_way_ms, install_ms=0.3, barrier_ms=0.05)
        predicted = schedule_update_time(schedule, cost)
        rows.append([
            one_way_ms,
            predicted,
            result.update_duration_ms,
            result.update_duration_ms / predicted,
        ])
    emit(
        "E5a / update time vs channel latency: analytic model vs simulation",
        ["one-way ms", "model ms", "simulated ms", "sim/model"],
        rows,
    )
    # the model tracks the simulation within ~35% across the sweep
    assert all(0.65 <= row[3] <= 1.35 for row in rows)

    benchmark.pedantic(
        lambda: run_figure1(algorithm="wayup", seed=1, channel_latency=5.0),
        rounds=3,
        iterations=1,
    )


@pytest.mark.benchmark(group="e5-barriers")
def test_e5_round_decomposition(benchmark, emit):
    schedule = schedule_update(figure1_problem(), "wayup").schedule
    cost = CostModel(rtt_ms=2.0, install_ms=0.3, barrier_ms=0.05)
    rows = [
        [row["round"], schedule.metadata["round_names"][row["round"]],
         row["switches"], row["rtt_ms"], row["slowest_install_ms"],
         row["total_ms"]]
        for row in round_time_breakdown(schedule, cost)
    ]
    emit(
        "E5b / per-round time decomposition (Figure-1 WayUp, model)",
        ["round", "name", "switches", "rtt", "slowest install", "total ms"],
        rows,
    )
    assert len(rows) == schedule.n_rounds

    benchmark.pedantic(
        lambda: schedule_update_time(schedule, cost), rounds=20, iterations=10
    )


@pytest.mark.benchmark(group="e5-barriers")
def test_e5_rounds_dominate_when_rtt_large(benchmark, emit):
    """With WAN-scale RTT, update time is essentially rounds x RTT."""
    rows = []
    for algorithm, rounds_hint in (("oneshot", 1), ("two-phase", 3), ("wayup", 5)):
        result = run_figure1(algorithm=algorithm, seed=1, channel_latency=25.0)
        rows.append([
            algorithm, result.rounds, result.update_duration_ms,
            result.update_duration_ms / (2 * 25.0),
        ])
    emit(
        "E5c / WAN control channel (25 ms one-way): rounds dominate",
        ["algorithm", "rounds", "update ms", "~RTT multiples"],
        rows,
    )
    assert rows[0][2] < rows[1][2] < rows[2][2]

    benchmark.pedantic(
        lambda: run_figure1(algorithm="two-phase", seed=1, channel_latency=25.0),
        rounds=3,
        iterations=1,
    )
