"""Perf benchmark: incremental SafetyOracle vs from-scratch verification.

Tracks the speedups delivered by the delta-maintained union graphs of
:mod:`repro.core.oracle` against the seed-era from-scratch pipeline
(rebuild the :class:`UnionGraph`, re-run whole-graph checks, per query).
Emits ``BENCH_oracle.json`` so the perf trajectory is comparable across
PRs.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_oracle.py [--quick] [--out PATH]

``--quick`` keeps the from-scratch comparison at sizes where the legacy
path finishes in seconds (the ~30s smoke budget of ``make bench-smoke``);
the default mode also measures the legacy scheduler at n=500 directly,
which takes a few minutes -- that is the point.

Acceptance targets (tracked in the emitted JSON):

* ``greedy_slf_schedule(reversal_instance(500))``: >= 10x vs seed;
* ``minimal_round_schedule(reversal_instance(10), (RLF,))``: >= 3x vs seed.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

from _provenance import provenance
from repro.core.greedy_slf import greedy_slf_schedule
from repro.core.hardness import reversal_instance
from repro.core.optimal import minimal_round_schedule
from repro.core.oracle import clear_registry, oracle_for
from repro.core.peacock import peacock_schedule
from repro.core.problem import UpdateKind
from repro.core.transient import UnionGraph
from repro.core.verify import Property

DEFAULT_OUT = pathlib.Path(__file__).parent / "results" / "BENCH_oracle.json"

GREEDY_TARGET_SPEEDUP = 10.0
OPTIMAL_TARGET_SPEEDUP = 3.0


def _legacy_greedy_slf(problem):
    """The seed greedy-SLF loop: one full union-graph rebuild per query."""

    def safe(updated, round_nodes):
        union = UnionGraph.from_update_sets(problem, updated, round_nodes)
        return union.find_cycle() is None

    install = {
        node
        for node in problem.required_updates
        if problem.kind(node) is UpdateKind.INSTALL
    }
    updated = set(install)
    new_pos = {node: i for i, node in enumerate(problem.new_path.nodes)}
    pending = sorted(
        problem.required_updates - install, key=lambda n: new_pos[n], reverse=True
    )
    rounds = [set(install)] if install else []
    while pending:
        round_nodes: set = set()
        kept = []
        for node in pending:
            candidate = round_nodes | {node}
            if safe(updated, candidate):
                round_nodes = candidate
            else:
                kept.append(node)
        assert round_nodes, "legacy greedy stalled"
        rounds.append(round_nodes)
        updated |= round_nodes
        pending = kept
    return rounds


def _time(fn, repeats=3):
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def bench_greedy(quick: bool) -> dict:
    """Oracle vs legacy greedy SLF on the reversal family."""
    rows = []
    legacy_sizes = {60: 3, 120: 2, 160: 2} if quick else {60: 3, 120: 3, 240: 2, 500: 1}
    oracle_sizes = (60, 120, 160, 240, 500, 1000) if quick else (
        60, 120, 240, 500, 1000, 2000
    )
    for n in oracle_sizes:
        problem = reversal_instance(n)

        def cold_run():
            # cold per repeat: oracle construction and every PK reorder
            # are part of what we gate on, same as the memoryless legacy
            clear_registry()
            return greedy_slf_schedule(problem, include_cleanup=False)

        oracle_s, schedule = _time(cold_run, repeats=3 if n <= 500 else 1)
        row = {
            "n": n,
            "oracle_s": round(oracle_s, 4),
            "rounds": schedule.n_rounds,
            "legacy_s": None,
            "speedup": None,
        }
        if n in legacy_sizes:
            legacy_s, legacy_rounds = _time(
                lambda: _legacy_greedy_slf(problem), repeats=legacy_sizes[n]
            )
            assert len(legacy_rounds) == schedule.n_rounds, (
                "oracle and legacy greedy disagree on round count"
            )
            row["legacy_s"] = round(legacy_s, 4)
            row["speedup"] = round(legacy_s / oracle_s, 1)
        rows.append(row)
    measured = [r for r in rows if r["speedup"] is not None]
    at_500 = next((r for r in rows if r["n"] == 500 and r["speedup"]), None)
    return {
        "description": "greedy_slf_schedule(reversal_instance(n)), oracle vs seed",
        "target_speedup_at_500": GREEDY_TARGET_SPEEDUP,
        "rows": rows,
        "max_measured_speedup": max(r["speedup"] for r in measured),
        "speedup_at_500": at_500["speedup"] if at_500 else None,
        "meets_target": bool(
            (at_500 and at_500["speedup"] >= GREEDY_TARGET_SPEEDUP)
            or (
                at_500 is None
                and all(
                    r["speedup"] >= GREEDY_TARGET_SPEEDUP
                    for r in measured
                    if r["n"] >= 120
                )
            )
        ),
    }


def bench_optimal(quick: bool) -> dict:
    """Exact BFS at n=10 under RLF: oracle path vs seed path."""
    problem = reversal_instance(10)
    repeats = 3 if quick else 5

    # pinned to the sets engine so this series keeps measuring the PR 1
    # metric (oracle-backed frozenset BFS vs seed path); the bitmask
    # engine has its own series in benchmarks/bench_perf_exact.py
    def cold_oracle():
        clear_registry()
        return minimal_round_schedule(
            problem, (Property.RLF,), use_oracle=True, engine="sets"
        )

    oracle_s, schedule = _time(cold_oracle, repeats=repeats)
    legacy_s, legacy = _time(
        lambda: minimal_round_schedule(problem, (Property.RLF,), use_oracle=False),
        repeats=repeats,
    )
    assert schedule.n_rounds == legacy.n_rounds
    return {
        "description": "minimal_round_schedule(reversal_instance(10), RLF)",
        "target_speedup": OPTIMAL_TARGET_SPEEDUP,
        "oracle_ms": round(oracle_s * 1000, 2),
        "legacy_ms": round(legacy_s * 1000, 2),
        "speedup": round(legacy_s / oracle_s, 1),
        "rounds": schedule.n_rounds,
        "meets_target": legacy_s / oracle_s >= OPTIMAL_TARGET_SPEEDUP,
    }


def bench_memoization() -> dict:
    """Warm repeat of the exact search: the shared memo answers everything."""
    problem = reversal_instance(10)
    clear_registry()
    cold_s, _ = _time(
        lambda: minimal_round_schedule(problem, (Property.RLF,)), repeats=1
    )
    warm_s, _ = _time(
        lambda: minimal_round_schedule(problem, (Property.RLF,)), repeats=3
    )
    oracle = oracle_for(problem, (Property.RLF,))
    return {
        "description": "repeat minimal_round_schedule on a warm oracle memo",
        "cold_ms": round(cold_s * 1000, 2),
        "warm_ms": round(warm_s * 1000, 2),
        "warm_speedup": round(cold_s / warm_s, 1),
        "memo_hits": oracle.stats.memo_hits,
        "memo_misses": oracle.stats.memo_misses,
        "memo_size": oracle.memo_size(),
    }


def bench_scaling(quick: bool) -> dict:
    """Oracle-backed schedulers at sizes the seed could not touch."""
    rows = []
    for n in (500, 1000) if quick else (500, 1000, 2000):
        problem = reversal_instance(n)
        clear_registry()
        greedy_s, greedy = _time(
            lambda: greedy_slf_schedule(problem, include_cleanup=False), repeats=1
        )
        peacock_s, peacock = _time(
            lambda: peacock_schedule(problem, include_cleanup=False), repeats=1
        )
        rows.append({
            "n": n,
            "greedy_slf_s": round(greedy_s, 3),
            "greedy_rounds": greedy.n_rounds,
            "peacock_exact_s": round(peacock_s, 4),
            "peacock_rounds": peacock.n_rounds,
        })
    return {
        "description": "oracle-backed schedulers on large reversals",
        "rows": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="~30s subset: skip the minutes-long legacy run at n=500",
    )
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    started = time.time()
    payload = {
        "benchmark": "oracle-perf",
        "mode": "quick" if args.quick else "full",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "provenance": provenance(),
        "results": {},
    }
    print(f"[bench_perf_oracle] mode={payload['mode']}")
    for name, fn in (
        ("greedy_slf_reversal", lambda: bench_greedy(args.quick)),
        ("minimal_rounds_rlf_n10", lambda: bench_optimal(args.quick)),
        ("memoization", bench_memoization),
        ("oracle_scaling", lambda: bench_scaling(args.quick)),
    ):
        section_start = time.time()
        payload["results"][name] = fn()
        print(f"  {name}: {time.time() - section_start:.1f}s")
    payload["wall_seconds"] = round(time.time() - started, 1)

    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"[bench_perf_oracle] wrote {args.out} ({payload['wall_seconds']}s)")

    greedy = payload["results"]["greedy_slf_reversal"]
    optimal = payload["results"]["minimal_rounds_rlf_n10"]
    print(
        f"  greedy SLF speedup: {greedy['max_measured_speedup']}x "
        f"(at n=500: {greedy['speedup_at_500']}, target {GREEDY_TARGET_SPEEDUP}x, "
        f"meets={greedy['meets_target']})"
    )
    print(
        f"  exact search speedup: {optimal['speedup']}x "
        f"(target {OPTIMAL_TARGET_SPEEDUP}x, meets={optimal['meets_target']})"
    )
    ok = greedy["meets_target"] and optimal["meets_target"]
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
