"""Fabric smoke: a faulty worker fleet must reproduce the pool runner.

Stands up a campaign coordinator behind the REST surface and throws a
deliberately unhealthy 3-worker process fleet at it:

* worker 0 is SIGKILLed mid-cell (after computing its 3rd record, before
  submitting it);
* worker 1 never heartbeats and naps before its first submit, so it is
  declared dead mid-run, its lease reclaimed, and its eventual submit
  arrives stale (it then re-registers and keeps working);
* worker 2 is healthy.

The gate: every cell completes and ``results.jsonl`` is byte-identical
to a 1-worker :class:`~repro.campaign.runner.CampaignRunner` baseline --
the fabric's determinism contract under death, reclaim, and stale
delivery.  Non-zero exit on any mismatch, so it can gate CI.

The fleet runs with the JSONL trace sink armed (``REPRO_TRACE_DIR``):
after the run, the merged coordinator + worker trace must reconstruct
every cell's full lease → run → submit lifecycle -- including the cells
the SIGKILLed and frozen-heartbeat workers lost mid-flight -- via
:func:`repro.obs.verify_lifecycles`.

Usage::

    PYTHONPATH=src python benchmarks/run_fabric_smoke.py [--root DIR]
"""

from __future__ import annotations

import argparse
import multiprocessing
import os
import sys
import tempfile

from repro.campaign import CampaignRunner, CampaignSpec
from repro.campaign.fabric import ChaosConfig, worker_main
from repro.obs import (
    configure_tracing,
    load_trace,
    reconstruct_cell_lifecycles,
    reset_global_tracer,
    verify_lifecycles,
)
from repro.rest.api import build_campaign_api
from repro.rest.http_binding import RestHttpServer

SPEC = {
    "name": "fabric-smoke",
    "seed": 42,
    "schedulers": ["peacock", "greedy-slf", "wayup"],
    "timeout_s": 30,
    "families": [
        {"family": "reversal", "sizes": [6, 10, 14, 18]},
        {"family": "sawtooth", "sizes": [10, 14, 18]},
        {"family": "slalom", "sizes": [2, 4, 6]},
        {"family": "random-update", "sizes": [8, 12], "repeats": 2},
    ],
}

CHAOS = {
    "victim": ChaosConfig(kill_after_cells=3, kill_mode="sigkill"),
    "frozen": ChaosConfig(freeze_heartbeats_after=0, delay_submits={0: 1.0}),
    "steady": None,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="work directory (default: a fresh temp dir)")
    parser.add_argument("--timeout", type=float, default=300.0)
    args = parser.parse_args(argv)
    root = args.root or tempfile.mkdtemp(prefix="fabric-smoke-")

    spec = CampaignSpec.from_dict(SPEC)
    n_cells = len(spec.expand())
    print(f"fabric-smoke: {n_cells} cells -> {root}")

    print("running 1-worker pool baseline ...")
    runner = CampaignRunner(spec, root=f"{root}/baseline", workers=1)
    runner.run()
    baseline = runner.store.results_bytes()

    # arm tracing only for the fleet half: the env var reaches the
    # spawned workers (each writes traces/trace-<pid>.jsonl), and the
    # main process -- coordinator side -- attaches its own sink
    trace_dir = f"{root}/traces"
    os.environ["REPRO_TRACE_DIR"] = trace_dir
    configure_tracing(directory=trace_dir)

    print("running 3-worker faulty fleet over HTTP ...")
    api = build_campaign_api(campaign_root=f"{root}/fleet")
    server = RestHttpServer(api, port=0)
    server.start()
    try:
        api.campaigns.serve({
            "spec": spec.to_dict(),
            "lease_ttl_s": 0.5,
            "heartbeat_interval_s": 0.1,
            "lease_cells": 4,
        })
        coordinator = api.campaigns.fabric(spec.campaign_id)
        ctx = multiprocessing.get_context("spawn")
        procs = {
            name: ctx.Process(
                target=worker_main, args=(server.url, spec.campaign_id),
                kwargs={"name": name,
                        "chaos": chaos.to_dict() if chaos else None},
                daemon=True,
            )
            for name, chaos in CHAOS.items()
        }
        for proc in procs.values():
            proc.start()
        finished = coordinator.wait(timeout_s=args.timeout)
        for proc in procs.values():
            proc.join(timeout=15)
        coordinator.close()
        status = coordinator.status()
        fleet_bytes = coordinator.store.results_bytes()
    finally:
        server.stop()
        api.campaigns.close()
        reset_global_tracer()  # flush + close the coordinator's sink
        os.environ.pop("REPRO_TRACE_DIR", None)

    fabric = status["fabric"]
    print("fabric counters: " + ", ".join(
        f"{key}={fabric[key]}"
        for key in ("leases_granted", "cells_leased", "reclaims", "retries",
                    "escalations", "duplicate_submits", "stale_submits",
                    "transient_failures")
    ))
    print(f"victim exitcode: {procs['victim'].exitcode} (expect -9)")

    failures = []
    if not finished:
        failures.append(f"fleet did not finish within {args.timeout}s")
    if status["done"] != n_cells:
        failures.append(f"{status['done']}/{n_cells} cells done")
    if procs["victim"].exitcode != -9:
        failures.append("victim worker was not SIGKILLed")
    if fabric["reclaims"] < 1:
        failures.append("no lease was ever reclaimed")
    if fleet_bytes != baseline:
        failures.append("fleet results.jsonl differs from 1-worker baseline")

    records = load_trace(trace_dir)
    lifecycles = reconstruct_cell_lifecycles(records)
    expected = [cell.cell_id for cell in spec.expand()]
    reclaimed = sum(c.reclaims for c in lifecycles.values())
    print(
        f"trace: {len(records)} records, {len(lifecycles)} cell "
        f"lifecycles, {reclaimed} reclaim events"
    )
    for problem in verify_lifecycles(records, expected):
        failures.append(f"trace: {problem}")
    if len(lifecycles) < n_cells:
        failures.append(
            f"trace covers {len(lifecycles)}/{n_cells} cell lifecycles"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"fabric-smoke OK: {n_cells} cells, fleet output byte-identical "
          "to the 1-worker baseline, all lifecycles reconstructed from "
          "the trace")
    return 0


if __name__ == "__main__":
    sys.exit(main())
