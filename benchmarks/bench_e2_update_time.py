"""E2 -- update time of flow tables (the demo's measured quantity).

The prototype's evaluation runs "with respect to the update time of flow
tables in OpenFlow switches (OVS)".  We regenerate it as: simulated wall
time from the first FlowMod to the last barrier reply, swept over

* the scheduling algorithm (consistency costs rounds),
* the switch install-latency profile (OVS vs loaded OVS vs hardware
  TCAM, after Kuzniar et al. PAM'15 -- the paper's footnote 2), and
* the policy length (linear topologies of growing size).

Expected shape: one-shot is fastest (and unsafe); each consistency round
adds roughly one RTT + the round's slowest install; hardware tables
dominate everything.
"""

import pytest

from repro.core.problem import UpdateProblem
from repro.netlab.figure1 import run_figure1
from repro.netlab.scenario import UpdateScenario
from repro.switch.latency import (
    HARDWARE_PROFILE,
    OVS_LOADED_PROFILE,
    OVS_PROFILE,
)
from repro.topology.graph import Topology

PROFILES = [
    ("ovs", OVS_PROFILE),
    ("ovs-loaded", OVS_LOADED_PROFILE),
    ("hardware", HARDWARE_PROFILE),
]
ALGORITHMS = ["oneshot", "two-phase", "peacock", "wayup"]


def _reversal_scenario(n: int, algorithm: str, timing, seed: int = 1) -> UpdateScenario:
    """The reversal instance executed on the wire (rounds become time)."""
    from repro.core.hardness import reversal_instance

    problem = reversal_instance(n)
    topo = Topology(name=f"reversal-{n}")
    for node in sorted(problem.nodes):
        topo.add_switch(node)
    seen = set()
    for path in (problem.old_path, problem.new_path):
        for u, v in path.edges():
            if frozenset((u, v)) not in seen:
                seen.add(frozenset((u, v)))
                topo.add_link(u, v)
    topo.add_host("h1")
    topo.add_host("h2")
    topo.add_link("h1", problem.source)
    topo.add_link("h2", problem.destination)
    return UpdateScenario(
        topo=topo, problem=problem, source_host="h1", destination_host="h2",
        algorithm=algorithm, seed=seed, timing=timing,
    )


@pytest.mark.benchmark(group="e2-update-time")
def test_e2_algorithm_profile_matrix(benchmark, emit):
    rows = []
    for profile_name, profile in PROFILES:
        for algorithm in ALGORITHMS:
            result = run_figure1(algorithm=algorithm, seed=1, timing=profile)
            rows.append([
                profile_name,
                algorithm,
                result.rounds,
                result.update_duration_ms,
                result.flow_mods,
            ])
    emit(
        "E2a / flow-table update time on Figure 1 (simulated ms)",
        ["switch profile", "algorithm", "rounds", "update ms", "flow mods"],
        rows,
    )
    # shape checks: scheduling costs time; hardware dominates
    by_key = {(r[0], r[1]): r[3] for r in rows}
    assert by_key[("ovs", "wayup")] > by_key[("ovs", "oneshot")]
    assert by_key[("hardware", "wayup")] > 3 * by_key[("ovs", "wayup")]

    benchmark.pedantic(
        lambda: run_figure1(algorithm="wayup", seed=1, timing=OVS_PROFILE),
        rounds=3,
        iterations=1,
    )


@pytest.mark.benchmark(group="e2-update-time")
def test_e2_update_time_vs_policy_length(benchmark, emit):
    """On reversals, SLF's extra rounds turn directly into update time."""
    rows = []
    results = {}
    for n in (5, 7, 9, 12):
        for algorithm in ("oneshot", "peacock", "greedy-slf"):
            scenario = _reversal_scenario(n, algorithm, OVS_PROFILE)
            result = scenario.run()
            results[(n, algorithm)] = result
            rows.append([n, algorithm, result.rounds, result.update_duration_ms])
    emit(
        "E2b / update time vs policy length (OVS profile, reversal update)",
        ["path length", "algorithm", "rounds", "update ms"],
        rows,
    )
    # relaxed consistency keeps update time flat; strong grows linearly
    assert (
        results[(12, "greedy-slf")].update_duration_ms
        > 2 * results[(12, "peacock")].update_duration_ms
    )
    assert (
        results[(12, "peacock")].update_duration_ms
        < 1.5 * results[(5, "peacock")].update_duration_ms
    )

    benchmark.pedantic(
        lambda: _reversal_scenario(9, "peacock", OVS_PROFILE).run(),
        rounds=3,
        iterations=1,
    )
