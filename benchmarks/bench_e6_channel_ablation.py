"""E6 -- ablation: what exactly buys the safety?

Two knobs the paper's design relies on:

* **barriers** -- rounds are fenced by barrier request/reply.  Replacing
  them with interval timers (as a naive implementation might) re-opens
  the window: a slow switch is still installing round r while round r+1
  ships, and WayUp's waypoint guarantee evaporates.
* **FIFO vs reordering channels** -- even with in-order (TCP-like)
  delivery per switch, *cross-switch* asynchrony alone breaks one-shot
  updates; a reordering channel makes single-switch command order
  unreliable too and hurts more.
"""

import pytest

from repro.netlab.figure1 import run_figure1

SEEDS = range(4)


def _violations(**kwargs) -> tuple[int, int]:
    bypass = total = 0
    for seed in SEEDS:
        result = run_figure1(seed=seed, **kwargs)
        bypass += result.traffic.counters.bypassed_waypoint
        total += result.traffic.counters.violations
    return bypass, total


@pytest.mark.benchmark(group="e6-ablation")
def test_e6_barriers_vs_timers(benchmark, emit):
    rows = []
    fenced_bypass, fenced_total = _violations(
        algorithm="wayup", channel_latency="uniform:0.5:6"
    )
    rows.append(["wayup", "barriers", fenced_bypass, fenced_total])
    for interval in (0.5, 2.0, 10.0, 30.0):
        bypass, total = _violations(
            algorithm="wayup",
            channel_latency="uniform:0.5:6",
            use_barriers=False,
            interval_ms=interval,
        )
        rows.append(["wayup", f"timer {interval}ms", bypass, total])
    emit(
        "E6a / round fencing: barriers vs interval timers (4 seeds)",
        ["algorithm", "fencing", "fw bypasses", "all violations"],
        rows,
    )
    assert rows[0][2] == 0  # barriers: contract holds
    assert rows[1][2] > 0   # fast timers: contract broken
    # long enough timers approximate barriers again
    assert rows[-1][2] <= rows[1][2]

    benchmark.pedantic(
        lambda: run_figure1(
            algorithm="wayup", seed=0, channel_latency="uniform:0.5:6",
            use_barriers=False, interval_ms=0.5,
        ),
        rounds=3,
        iterations=1,
    )


@pytest.mark.benchmark(group="e6-ablation")
def test_e6_fifo_vs_reordering(benchmark, emit):
    rows = []
    for channel_kind, fifo in (("fifo (TCP-like)", True), ("reordering", False)):
        for algorithm in ("oneshot", "wayup"):
            bypass, total = _violations(
                algorithm=algorithm,
                channel_latency="uniform:0.5:6",
                fifo=fifo,
            )
            rows.append([channel_kind, algorithm, bypass, total])
    emit(
        "E6b / channel semantics: FIFO vs reordering (4 seeds)",
        ["channel", "algorithm", "fw bypasses", "all violations"],
        rows,
    )
    by_key = {(r[0], r[1]): r[3] for r in rows}
    # one-shot is broken either way; wayup stays waypoint-clean on both,
    # because barriers fence rounds regardless of channel ordering
    wayup_rows = [r for r in rows if r[1] == "wayup"]
    assert all(r[2] == 0 for r in wayup_rows)
    assert by_key[("fifo (TCP-like)", "oneshot")] > 0

    benchmark.pedantic(
        lambda: run_figure1(
            algorithm="oneshot", seed=0, channel_latency="uniform:0.5:6",
            fifo=False,
        ),
        rounds=3,
        iterations=1,
    )
