#!/usr/bin/env python3
"""Relaxation pays: Peacock vs the strong-loop-free greedy (PODC'15 shape).

On reversal instances, *any* strong-loop-free schedule must peel one node
per round (n-2 rounds); relaxed loop freedom finishes in 3 because the
backward region is unreachable from the source until the final flip.  This
example prints the round counts, verifies both schedules, and cross-checks
the small cases against the exact minimum-round search.

Run: ``python examples/peacock_vs_greedy.py``
"""

from repro.core import (
    reversal_instance,
    sawtooth_instance,
    schedule_update,
)
from repro.metrics import ascii_table


def main() -> None:
    # every scheduler -- greedy and exact -- goes through the one
    # registry envelope; verify=True checks each against its guarantee
    rows = []
    for n in (6, 8, 10, 14, 20, 30, 50):
        problem = reversal_instance(n)
        rlf = schedule_update(problem, "peacock", include_cleanup=False, verify=True)
        slf = schedule_update(problem, "greedy-slf", include_cleanup=False, verify=True)
        assert rlf.verified and slf.verified
        optimal_rlf = "-"
        optimal_slf = "-"
        if n <= 10:
            optimal_rlf = schedule_update(
                problem, "optimal:rlf", include_cleanup=False
            ).n_rounds
            optimal_slf = schedule_update(
                problem, "optimal:slf", include_cleanup=False
            ).n_rounds
        rows.append([n, rlf.n_rounds, optimal_rlf, slf.n_rounds, optimal_slf])
    print(ascii_table(
        ["n", "peacock (RLF)", "optimal RLF", "greedy (SLF)", "optimal SLF"],
        rows,
        title="Rounds to update the reversal instance",
    ))

    print()
    rows = []
    for block in (2, 3, 4, 6, 8):
        problem = sawtooth_instance(18, block=block)
        rlf = schedule_update(problem, "peacock", include_cleanup=False)
        slf = schedule_update(problem, "greedy-slf", include_cleanup=False)
        rows.append([block, rlf.n_rounds, slf.n_rounds])
    print(ascii_table(
        ["tooth size", "peacock (RLF)", "greedy (SLF)"],
        rows,
        title="Sawtooth instances, n=18: bigger teeth, bigger SLF pain",
    ))


if __name__ == "__main__":
    main()
