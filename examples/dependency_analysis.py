#!/usr/bin/env python3
"""Why WayUp's rounds look the way they do: forced-order analysis.

Takes the crossing instance (old ``1 2 3 4 5``, new ``1 4 3 2 5``,
waypoint 3) and derives, from the verifiers alone:

1. which updates can never go first,
2. which pairwise orders are *forced* in every waypoint-enforcing
   schedule (exact, via constrained exhaustive search),
3. why adding loop freedom makes the instance infeasible, and
4. a control-plane trace of the executed schedule proving the round FSM
   honored the forced orders on the wire.

Run: ``python examples/dependency_analysis.py``
"""

from repro.core import (
    Property,
    dependency_graph,
    explain_schedule,
    greedy_deadlock_certificate,
    unsafe_alone,
    wayup_schedule,
)
from repro.core.hardness import crossing_instance
from repro.controller import ControlPlaneTrace
from repro.metrics import ascii_table


def main() -> None:
    problem = crossing_instance()
    print(f"instance: {problem}\n")

    # -- 1. who can start? -----------------------------------------------------
    blocked = unsafe_alone(problem, (Property.WPE,))
    print(f"unsafe as the first update (WPE): {sorted(blocked)}")
    print("  - 2 first: packets jump from the old prefix straight to d")
    print("  - 1 first: packets enter the unprepared new path and skip w\n")

    # -- 2. forced orders ------------------------------------------------------
    graph = dependency_graph(problem, (Property.WPE,))
    rows = [[before, after] for before, after in sorted(graph.edges)]
    print(ascii_table(["must precede", "node"], rows,
                      title="orders forced in EVERY waypoint-enforcing schedule"))

    schedule = wayup_schedule(problem, include_cleanup=False)
    print("\nWayUp's realization:")
    for line in explain_schedule(schedule):
        print(f"  {line}")
    for before, after in graph.edges:
        assert schedule.round_of(before) < schedule.round_of(after)
    print("  (every forced order respected)\n")

    # -- 3. the loop-freedom clash --------------------------------------------
    certificate = greedy_deadlock_certificate(
        problem, (Property.WPE, Property.SLF)
    )
    print(f"WPE + strong loop freedom: EVERY node is unsafe first "
          f"({sorted(certificate)}) -- no schedule can begin; the "
          f"combination is infeasible (the HotNets'14 impossibility).\n")

    # -- 4. the wire agrees ----------------------------------------------------
    from repro.netlab.scenario import UpdateScenario
    from repro.topology.graph import Topology

    topo = Topology(name="crossing")
    for node in sorted(problem.nodes):
        topo.add_switch(node)
    seen = set()
    for path in (problem.old_path, problem.new_path):
        for u, v in path.edges():
            if frozenset((u, v)) not in seen:
                seen.add(frozenset((u, v)))
                topo.add_link(u, v)
    topo.add_host("h1")
    topo.add_host("h2")
    topo.add_link("h1", 1)
    topo.add_link("h2", 5)
    scenario = UpdateScenario(
        topo=topo, problem=problem, source_host="h1", destination_host="h2",
        algorithm="wayup", seed=0,
    )
    trace = ControlPlaneTrace().attach(scenario.network)
    result = scenario.run()
    counters = result.traffic.counters
    print(f"executed on the simulated network: {result.rounds} rounds, "
          f"{len(trace)} control messages traced")
    print(f"  firewall bypasses: {counters.bypassed_waypoint} "
          f"(WayUp's guarantee, held)")
    print(f"  transient loops:   {counters.looped} "
          f"(the price of WPE on a crossing -- loop freedom is provably "
          f"unachievable here)")
    mods = [(e.time_ms, e.dpid) for e in trace.of_type("FLOW_MOD")]
    print("FlowMod send order (time ms, switch):",
          [(round(t, 2), d) for t, d in mods])


if __name__ == "__main__":
    main()
