#!/usr/bin/env python3
"""Serve the Figure-1 network over real HTTP and drive it with curl.

This is the closest analogue of the original demo setup: a controller
REST API on localhost that accepts the paper's update messages.  The
script starts the server, issues the update against itself with urllib
(so it works unattended), prints the exchange, and leaves the server up
for manual curl until Ctrl-C (pass ``--once`` to exit after the demo).

Run: ``python examples/rest_server_demo.py [--once]``

Manual drive, while it runs::

    curl http://127.0.0.1:8080/stats/switches
    curl -X POST -d '{"oldpath": [1,2,9,3,4,5,12],
                      "newpath": [1,6,2,5,3,7,8,12],
                      "wp": 3, "interval": 0}' \
         http://127.0.0.1:8080/update/wayup
"""

import json
import sys
import time
import urllib.request

from repro.netlab import build_figure1_scenario
from repro.rest import RestHttpServer, build_rest_api


def main() -> None:
    scenario = build_figure1_scenario(algorithm="wayup", seed=0)
    scenario.prepare()
    api = build_rest_api(
        scenario.ofctl_app,
        scenario.update_app,
        scenario.update_queue,
        flush=scenario.network.flush,
    )
    server = RestHttpServer(api, port=0)
    server.start()
    print(f"REST server on {server.url}")

    problem = scenario.problem
    body = json.dumps({
        "oldpath": list(problem.old_path.nodes),
        "newpath": list(problem.new_path.nodes),
        "wp": problem.waypoint,
        "interval": 0,
    }).encode()
    request = urllib.request.Request(
        f"{server.url}/update/wayup", data=body, method="POST"
    )
    print("\nPOST /update/wayup")
    with urllib.request.urlopen(request) as response:
        summary = json.loads(response.read())
    print(json.dumps(summary, indent=2, sort_keys=True))

    with urllib.request.urlopen(
        f"{server.url}/update/{summary['update_id']}"
    ) as response:
        print("\nGET /update/" + summary["update_id"])
        print(json.dumps(json.loads(response.read()), indent=2, sort_keys=True))

    if "--once" in sys.argv:
        server.stop()
        return
    print("\nserver stays up for manual curl; Ctrl-C to stop")
    try:
        while True:
            time.sleep(1)
    except KeyboardInterrupt:
        server.stop()


if __name__ == "__main__":
    main()
