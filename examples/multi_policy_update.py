#!/usr/bin/env python3
"""Updating several policies at once (the DSN'16 extension).

Two regimes:

* isolated per-flow rules -- per-policy schedules merge round-by-round;
* shared destination-based rules -- one rule per switch serves every
  policy, so rounds must be safe for *all* of them simultaneously, and a
  joint greedy packs them (or proves the policies deadlock).

Run: ``python examples/multi_policy_update.py``
"""

from repro.core import (
    JointUpdateProblem,
    Property,
    UpdateProblem,
    greedy_joint_schedule,
    merge_isolated_schedules,
    peacock_schedule,
    verify_joint_schedule,
)
from repro.metrics import ascii_table


def isolated_demo() -> None:
    print("=== isolated flows (per-flow rules) ===")
    policies = [
        UpdateProblem([1, 2, 3, 4], [1, 3, 2, 4], name="flow-a"),
        UpdateProblem([1, 2, 3, 4], [1, 5, 4], name="flow-b"),
        UpdateProblem([2, 3, 4], [2, 6, 3, 4], name="flow-c"),
    ]
    schedules = [peacock_schedule(p, include_cleanup=False) for p in policies]
    plan = merge_isolated_schedules(schedules)
    rows = [
        [s.problem.name, s.n_rounds, sorted(map(sorted, s.rounds), key=str)]
        for s in schedules
    ]
    print(ascii_table(["policy", "rounds", "schedule"], rows))
    print(f"merged execution: {plan.n_rounds} rounds, "
          f"{plan.total_updates()} rule changes\n")


def shared_demo() -> None:
    print("=== shared destination-based rules ===")
    # three sources, one destination (6); node 3's single rule is shared
    policies = [
        UpdateProblem([1, 3, 4, 6], [1, 3, 5, 6], waypoint=3, name="src-1"),
        UpdateProblem([2, 3, 4, 6], [2, 3, 5, 6], name="src-2"),
        UpdateProblem([7, 3, 4, 6], [7, 3, 5, 6], name="src-7"),
    ]
    joint = JointUpdateProblem(policies, name="to-6")
    print(f"shared switches: {sorted(joint.required_updates, key=repr)} must "
          f"flip once for all {len(policies)} policies")
    schedule = greedy_joint_schedule(
        joint, properties=(Property.RLF, Property.BLACKHOLE, Property.WPE)
    )
    rows = [
        [index, ", ".join(map(str, sorted(nodes, key=repr)))]
        for index, nodes in enumerate(schedule.rounds)
    ]
    print(ascii_table(["round", "switches"], rows, title="joint schedule"))
    report = verify_joint_schedule(
        joint, schedule, properties=(Property.RLF, Property.BLACKHOLE, Property.WPE)
    )
    print(f"safe for every policy: {report.ok}")


def main() -> None:
    isolated_demo()
    shared_demo()


if __name__ == "__main__":
    main()
