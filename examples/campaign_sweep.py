#!/usr/bin/env python3
"""Campaign walkthrough: a 3-family x 3-scheduler sweep and its report.

The campaign engine replaces hand-rolled benchmark loops: a declarative
JSON-serializable spec enumerates scenario cells (family x size x repeat
x scheduler, deterministically seeded), a runner shards them over worker
processes with per-cell error capture, and the run directory aggregates
into the percentile tables of the paper-style reports.

1. build a spec sweeping three instance families against three schedulers,
2. run it twice -- the second run resumes and does nothing,
3. aggregate into the family x scheduler report table,
4. show a single-cell drill-down record.

Run: ``python examples/campaign_sweep.py``
(The same spec as a file runs as:
``repro campaign run examples/specs/smoke.json -j 4``.)
"""

import json
import tempfile

from repro.campaign import CampaignRunner, CampaignSpec, render_report

SPEC = {
    "name": "sweep-demo",
    "seed": 7,
    # three instance families: an adversarial chain, a waypoint stress
    # family, and random fat-tree path changes (data-center shaped)
    "families": [
        {"family": "reversal", "sizes": [6, 10, 14, 18]},
        {"family": "slalom", "sizes": [1, 2, 4, 8]},
        {"family": "fat-tree", "sizes": [4], "repeats": 4},
    ],
    # three schedulers: relaxed loop freedom, strong loop freedom, and the
    # graceful-degradation ladder (records the strongest feasible rung)
    "schedulers": ["peacock", "greedy-slf", "strongest"],
    "verify": True,
}


def main() -> None:
    spec = CampaignSpec.from_dict(SPEC)
    cells = spec.expand()
    print(f"spec {spec.campaign_id!r} expands to {len(cells)} cells\n")

    root = tempfile.mkdtemp(prefix="repro-sweep-")
    runner = CampaignRunner(spec, root=root, workers=2)
    status = runner.run()
    print(f"first run : {status['done']}/{status['total']} cells completed")

    # rerunning the identical spec resumes the same run directory: every
    # cell is already on disk, so nothing executes
    status = CampaignRunner(spec, root=root, workers=2).run()
    print(f"second run: {status['remaining']} cells remaining (resumed)\n")

    store = runner.store
    print(render_report(store.records(), store.timings(),
                        title=f"campaign {spec.campaign_id}"))

    # every cell is one JSONL record -- deterministic (seed-derived fields
    # only, so N-worker output is byte-identical to 1-worker output)
    record = store.records()[0]
    print("\none cell record:")
    print(json.dumps(record, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
