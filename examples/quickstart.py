#!/usr/bin/env python3
"""Quickstart: schedule, verify and execute a transiently secure update.

Covers the library's three layers in ~60 lines:

1. model a policy change as an :class:`UpdateProblem`,
2. compute a WayUp schedule and *prove* it waypoint-enforcing with the
   transient verifier (and show that the naive one-shot update is not),
3. execute the schedule over the simulated OpenFlow network with live
   probe traffic, reproducing the paper's demo end to end.

Run: ``python examples/quickstart.py``
"""

from repro import UpdateProblem, schedule_update
from repro.core import Property
from repro.netlab import run_figure1


def main() -> None:
    # -- 1. the policy change ------------------------------------------------
    # Old route 1-2-3-4-5, new route 1-6-3-7-5; switch 3 is the firewall.
    problem = UpdateProblem(
        old_path=[1, 2, 3, 4, 5],
        new_path=[1, 6, 3, 7, 5],
        waypoint=3,
    )
    print(f"problem: {problem}")

    # -- 2. schedule and verify (one envelope for every scheduler) -----------
    result = schedule_update(problem, "wayup", verify=True)
    schedule = result.schedule
    names = schedule.metadata["round_names"]
    for index, nodes in enumerate(schedule.rounds):
        print(f"  round {index} ({names[index]:>13}): update {sorted(nodes)}")

    print(f"WayUp transiently secure: {result.verified}")

    naive = schedule_update(
        problem, "oneshot", verify=True,
        properties=(Property.WPE, Property.BLACKHOLE),
    )
    print(f"one-shot transiently secure: {naive.verified}")
    for violation in naive.report.violations:
        print(f"  counterexample: {violation}")

    # -- 3. run the paper's demo on the simulated network ---------------------
    print("\nexecuting the Figure-1 demo (WayUp, probes every 0.25 ms):")
    result = run_figure1(algorithm="wayup", seed=1)
    counters = result.traffic.counters
    print(f"  rounds:           {result.rounds}")
    print(f"  update time:      {result.update_duration_ms:.2f} ms")
    print(f"  probes injected:  {counters.injected}")
    print(f"  delivered via w:  {counters.delivered}")
    print(f"  violations:       {counters.violations}")
    assert counters.violations == 0, "WayUp must keep the demo clean"
    print("\ntransiently secure update complete.")


if __name__ == "__main__":
    main()
