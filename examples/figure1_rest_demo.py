#!/usr/bin/env python3
"""The paper's demo, driven exactly as the prototype is: through REST.

Boots the 12-switch Figure-1 network (h1 at s1, h2 at s12, firewall s3),
installs the old solid route, then POSTs the paper's update message::

    {
      "oldpath": [...], "newpath": [...], "wp": 3, "interval": <ms>,
    }

to ``/update/wayup`` and inspects the controller's round-by-round
execution plus the flow tables afterwards -- all through the same REST
surface Ryu's ofctl exposes.

Run: ``python examples/figure1_rest_demo.py``
"""

import json

from repro.controller import OfctlRestApp, TransientUpdateApp, UpdateQueueApp
from repro.controller.rules import compile_initial_rules
from repro.netlab import Network, figure1_problem
from repro.openflow import Match
from repro.rest import build_rest_api
from repro.topology import figure1


def main() -> None:
    # -- boot the lab ---------------------------------------------------------
    topo = figure1(with_hosts=True)
    network = Network(topo, seed=0, channel_latency="uniform:0.5:2.0")
    queue = UpdateQueueApp()
    ofctl = OfctlRestApp()
    match = Match(eth_type=0x0800, ipv4_dst="10.0.0.2")
    update_app = TransientUpdateApp(topo, queue, default_match=match)
    for app in (queue, ofctl, update_app):
        network.controller.register_app(app)
    network.start()
    print(f"{len(network.controller.connected_dpids)} switches connected")

    # -- install the old (solid) route ----------------------------------------
    problem = figure1_problem()
    initial = compile_initial_rules(
        topo, problem, match, egress_port=network.host("h2").switch_port
    )
    network.send_flow_mods(initial)
    network.flush()

    rest = build_rest_api(ofctl, update_app, queue, flush=network.flush)

    # -- the paper's REST message ---------------------------------------------
    request = {
        "oldpath": list(problem.old_path.nodes),
        "newpath": list(problem.new_path.nodes),
        "wp": problem.waypoint,
        "interval": 5,  # ms between rounds, as the paper's header allows
    }
    print("\nPOST /update/wayup")
    print(json.dumps(request, indent=2))
    response = rest.handle("POST", "/update/wayup", request)
    print(f"\n-> {response.status}")
    print(json.dumps(response.body, indent=2, sort_keys=True))

    # -- poll the execution record --------------------------------------------
    update_id = response.body["update_id"]
    status = rest.handle("GET", f"/update/{update_id}")
    print(f"\nGET /update/{update_id}")
    print(json.dumps(status.body, indent=2, sort_keys=True))

    # -- inspect a flow table over REST ---------------------------------------
    stats = rest.handle("GET", "/stats/flow/3")
    print("\nGET /stats/flow/3 (the waypoint's table)")
    print(json.dumps(stats.body, indent=2, sort_keys=True))

    # -- confirm the dataplane took the dashed route ---------------------------
    trace = network.inject_from_host(
        "h1", network.default_packet("h1", "h2"),
        waypoint=problem.waypoint, destination_host="h2",
    )
    print(f"\nprobe path after update: {trace.path} -> {trace.fate.value}")
    assert list(problem.new_path.nodes) == trace.path


if __name__ == "__main__":
    main()
