#!/usr/bin/env python3
"""Why scheduling matters: one-shot updates under channel asynchrony.

Replays the same Figure-1 policy change with four strategies while the
control channel gets progressively more asynchronous, and counts what the
probe traffic experiences: firewall bypasses, loops, blackholes.  This is
the motivation experiment of the demo (and benchmark E4) as a narrative.

Run: ``python examples/adversarial_oneshot.py``
"""

from repro.metrics import ascii_table
from repro.netlab import run_figure1

CHANNELS = [
    ("synchronous-ish", "0.5"),
    ("mild jitter", "uniform:0.5:3"),
    ("heavy jitter", "uniform:0.5:10"),
    ("heavy tail", "lognormal:2:1.0"),
]

ALGORITHMS = ["oneshot", "wayup", "peacock", "two-phase"]


def main() -> None:
    rows = []
    for channel_name, latency_spec in CHANNELS:
        for algorithm in ALGORITHMS:
            totals = {"bypass": 0, "loop": 0, "drop": 0, "n": 0}
            for seed in range(5):
                result = run_figure1(
                    algorithm=algorithm, seed=seed, channel_latency=latency_spec
                )
                counters = result.traffic.counters
                totals["bypass"] += counters.bypassed_waypoint
                totals["loop"] += counters.looped
                totals["drop"] += counters.dropped
                totals["n"] += counters.injected
            rows.append([
                channel_name,
                algorithm,
                totals["n"],
                totals["bypass"],
                totals["loop"],
                totals["drop"],
            ])
    print(ascii_table(
        ["channel", "algorithm", "probes", "fw bypasses", "loops", "drops"],
        rows,
        title="Transient violations during the Figure-1 update (5 seeds)",
    ))
    print(
        "\nReading: one-shot updates blackhole/bypass under asynchrony;\n"
        "WayUp never bypasses the firewall (its contract); Peacock never\n"
        "loops (its contract); two-phase is clean at the cost of extra\n"
        "rules. The schedulers turn asynchrony from a security problem\n"
        "into a latency line-item."
    )


if __name__ == "__main__":
    main()
