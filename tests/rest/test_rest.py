"""Tests for the REST router, schemas, and the wired API."""

import pytest

from repro.controller.ofctl_rest import OfctlRestApp
from repro.controller.ofctl_rest_own import TransientUpdateApp
from repro.controller.update_queue import UpdateQueueApp
from repro.errors import BadRequestError
from repro.netlab.figure1 import figure1_problem
from repro.netlab.network import Network
from repro.openflow.match import Match
from repro.rest.api import Router, build_rest_api
from repro.rest.schemas import validate_flowentry_body, validate_update_body
from repro.topology.builders import figure1


class TestRouter:
    def test_static_route(self):
        router = Router()
        router.register("GET", "/ping", lambda body: {"pong": True})
        response = router.handle("GET", "/ping")
        assert response.status == 200 and response.body == {"pong": True}

    def test_params_extracted(self):
        router = Router()
        router.register("GET", "/stats/flow/<dpid>", lambda body, dpid: {"dpid": dpid})
        response = router.handle("GET", "/stats/flow/7")
        assert response.body == {"dpid": "7"}

    def test_404(self):
        assert Router().handle("GET", "/nope").status == 404

    def test_405(self):
        router = Router()
        router.register("GET", "/x", lambda body: {})
        assert router.handle("POST", "/x").status == 405

    def test_rest_error_mapped_to_status(self):
        router = Router()

        def handler(body):
            raise BadRequestError("nope")

        router.register("POST", "/x", handler)
        response = router.handle("POST", "/x", {})
        assert response.status == 400
        assert "nope" in response.body["error"]

    def test_json_rendering(self):
        router = Router()
        router.register("GET", "/x", lambda body: {"a": 1})
        assert router.handle("GET", "/x").json() == '{"a": 1}'


class TestSchemas:
    def _base(self):
        problem = figure1_problem()
        return {
            "oldpath": list(problem.old_path.nodes),
            "newpath": list(problem.new_path.nodes),
            "wp": problem.waypoint,
            "interval": 0,
        }

    def test_valid_update(self):
        validate_update_body(self._base())

    def test_string_dpids_accepted(self):
        body = self._base()
        body["oldpath"] = [str(v) for v in body["oldpath"]]
        body["wp"] = str(body["wp"])
        validate_update_body(body)

    @pytest.mark.parametrize("mutate,error", [
        (lambda b: b.pop("oldpath"), "oldpath"),
        (lambda b: b.update(newpath=[1]), "at least two"),
        (lambda b: b.update(oldpath=[1, 2, 2, 3]), "simple"),
        (lambda b: b.update(oldpath=[1, "x", 3]), "non-numeric"),
        (lambda b: b.update(interval=-5), "non-negative"),
        (lambda b: b.update(interval="soon"), "milliseconds"),
        (lambda b: b.update(wp="firewall"), "numeric"),
        (lambda b: b.update(add=[{"match": {}}]), "dpid"),
        (lambda b: b.update(add={"dpid": 1}), "list"),
    ])
    def test_invalid_updates(self, mutate, error):
        body = self._base()
        mutate(body)
        with pytest.raises(BadRequestError, match=error):
            validate_update_body(body)

    def test_not_a_dict(self):
        with pytest.raises(BadRequestError):
            validate_update_body([1, 2])

    def test_flowentry_valid(self):
        validate_flowentry_body({"dpid": 1, "match": {"in_port": 1}})

    @pytest.mark.parametrize("body", [
        {},
        {"dpid": True},
        {"dpid": "fw1"},
        {"dpid": 1, "match": "all"},
        {"dpid": 1, "priority": -1},
        {"dpid": 1, "priority": "high"},
    ])
    def test_flowentry_invalid(self, body):
        with pytest.raises(BadRequestError):
            validate_flowentry_body(body)


@pytest.fixture
def api(tmp_path):
    network = Network(figure1(with_hosts=True), seed=0)
    queue = UpdateQueueApp()
    ofctl = OfctlRestApp()
    update_app = TransientUpdateApp(
        network.topo, queue,
        default_match=Match(eth_type=0x0800, ipv4_dst="10.0.0.2"),
    )
    for app in (queue, ofctl, update_app):
        network.controller.register_app(app)
    network.start()
    rest = build_rest_api(
        ofctl, update_app, queue,
        flush=network.flush, campaign_root=str(tmp_path),
    )
    return network, rest


class TestWiredApi:
    def test_switches(self, api):
        _, rest = api
        response = rest.handle("GET", "/stats/switches")
        assert response.status == 200
        assert len(response.body) == 12

    def test_flowentry_and_stats(self, api):
        network, rest = api
        response = rest.handle(
            "POST",
            "/stats/flowentry/add",
            {"dpid": 5, "priority": 11, "match": {"in_port": 1},
             "actions": [{"type": "OUTPUT", "port": 2}]},
        )
        assert response.status == 200
        stats = rest.handle("GET", "/stats/flow/5")
        assert stats.status == 200
        assert stats.body["5"][0]["priority"] == 11

    def test_update_via_paper_format(self, api):
        network, rest = api
        problem = figure1_problem()
        body = {
            "oldpath": list(problem.old_path.nodes),
            "newpath": list(problem.new_path.nodes),
            "wp": problem.waypoint,
            "interval": 0,
        }
        response = rest.handle("POST", "/update/wayup", body)
        assert response.status == 200
        assert response.body["rounds"] == 5
        update_id = response.body["update_id"]
        status = rest.handle("GET", f"/update/{update_id}")
        assert status.status == 200
        assert status.body["state"] == "completed"
        assert status.body["rounds"] == 5

    def test_update_bad_body_rejected(self, api):
        _, rest = api
        response = rest.handle("POST", "/update/wayup", {"oldpath": [1]})
        assert response.status == 400

    def test_unknown_update_404(self, api):
        _, rest = api
        assert rest.handle("GET", "/update/ghost").status == 404

    def test_bad_dpid_400(self, api):
        _, rest = api
        assert rest.handle("GET", "/stats/flow/bogus").status == 400

    def test_unknown_dpid_404(self, api):
        _, rest = api
        response = rest.handle("GET", "/stats/flow/999")
        assert response.status == 404
        assert "999" in response.body["error"]


class TestScheduleEndpoint:
    """POST /schedule -- the scheduler service over the wire."""

    def _body(self, **extra):
        body = {"oldpath": [1, 2, 3, 4, 5], "newpath": [1, 6, 3, 7, 5],
                "wp": 3}
        body.update(extra)
        return body

    def test_compute_and_verify(self, api):
        _, rest = api
        response = rest.handle("POST", "/schedule", self._body())
        assert response.status == 200
        assert response.body["status"] == "ok"
        assert response.body["scheduler"] == "wayup"
        assert response.body["verified"] is True
        assert response.body["guarantee"] == ["wpe", "blackhole"]
        assert response.body["rounds"] == len(response.body["schedule"]["rounds"])

    def test_alias_and_params_resolve(self, api):
        _, rest = api
        response = rest.handle(
            "POST", "/schedule",
            self._body(scheduler="greedy_slf", cleanup=False),
        )
        assert response.status == 200
        assert response.body["scheduler"] == "greedy-slf"
        response = rest.handle(
            "POST", "/schedule",
            self._body(scheduler="optimal:slf?search=bfs"),
        )
        assert response.status == 200
        assert response.body["scheduler"] == "optimal:slf?search=bfs"

    def test_two_phase_by_construction(self, api):
        _, rest = api
        response = rest.handle(
            "POST", "/schedule", self._body(scheduler="two_phase")
        )
        assert response.status == 200
        assert response.body["scheduler"] == "two-phase"
        assert response.body["verified"] is True
        assert response.body["verification_method"].startswith("by-construction")

    def test_explicit_properties(self, api):
        _, rest = api
        response = rest.handle(
            "POST", "/schedule",
            self._body(scheduler="oneshot", properties=["wpe", "blackhole"]),
        )
        assert response.status == 200
        assert response.body["verified"] is False
        assert response.body["violations"]

    def test_infeasible_is_an_answer_not_an_error(self, api):
        _, rest = api
        # WPE + SLF clash on the crossing shape: old 1-2-3-4-5 wp 3 vs a
        # new path that reverses the interior
        response = rest.handle(
            "POST", "/schedule",
            {"oldpath": [1, 2, 3, 4, 5], "newpath": [1, 4, 3, 2, 5],
             "wp": 3, "scheduler": "combined:slf+wpe+blackhole"},
        )
        assert response.status == 200
        assert response.body["status"] == "infeasible"
        # canonical name, like every other machine-output path
        assert response.body["scheduler"] == "combined:wpe+slf+blackhole"

    def test_bad_requests_rejected(self, api):
        _, rest = api
        assert rest.handle("POST", "/schedule", {"oldpath": [1, 2]}).status == 400
        assert rest.handle(
            "POST", "/schedule", self._body(scheduler="no-such")
        ).status == 400
        assert rest.handle(
            "POST", "/schedule", self._body(bogus=1)
        ).status == 400
        # wayup without a waypoint is a client error
        assert rest.handle(
            "POST", "/schedule",
            {"oldpath": [1, 2, 3], "newpath": [1, 4, 3], "scheduler": "wayup"},
        ).status == 400

    def test_engine_refusals_are_400_not_crashes(self, api):
        _, rest = api
        # exact-search size cap (DEFAULT_MAX_NODES=24: 30 updates exceed it)
        big = {"oldpath": list(range(1, 32)),
               "newpath": [1] + list(range(30, 1, -1)) + [31],
               "scheduler": "optimal:rlf"}
        assert rest.handle("POST", "/schedule", big).status == 400
        # unknown search mode and mistyped params
        assert rest.handle(
            "POST", "/schedule",
            self._body(scheduler="optimal:rlf", params={"search": "zzz"}),
        ).status == 400
        assert rest.handle(
            "POST", "/schedule",
            self._body(scheduler="optimal:rlf", params={"max_rounds": "3"}),
        ).status == 400
        # WPE verification requested on a waypointless problem
        assert rest.handle(
            "POST", "/schedule",
            {"oldpath": [1, 2, 3], "newpath": [1, 4, 3],
             "scheduler": "oneshot", "properties": ["wpe"]},
        ).status == 400

    def test_scheduler_listing_matches_registry(self, api):
        _, rest = api
        from repro.core.registry import REGISTRY

        response = rest.handle("GET", "/schedulers")
        assert response.status == 200
        assert [row["name"] for row in response.body] == REGISTRY.names()
        wayup = next(row for row in response.body if row["name"] == "wayup")
        assert wayup["requires_waypoint"] is True
        assert wayup["guarantee"] == ["wpe", "blackhole"]


CAMPAIGN_SPEC = {
    "name": "rest-mini",
    "seed": 1,
    "families": [
        {"family": "reversal", "sizes": [6, 8]},
        {"family": "slalom", "sizes": [2]},
    ],
    "schedulers": ["peacock", "wayup"],
}


class TestCampaignRoutes:
    def test_submit_then_status_and_report(self, api):
        _, rest = api
        response = rest.handle("POST", "/campaigns", CAMPAIGN_SPEC)
        assert response.status == 200
        assert response.body["done"] == 6
        campaign_id = response.body["campaign_id"]

        listing = rest.handle("GET", "/campaigns")
        assert listing.status == 200 and campaign_id in listing.body

        status = rest.handle("GET", f"/campaigns/{campaign_id}")
        assert status.status == 200
        assert status.body["remaining"] == 0
        assert status.body["by_status"]["error"] == 0

        report = rest.handle("GET", f"/campaigns/{campaign_id}/report")
        assert report.status == 200
        families = {row["family"] for row in report.body["rows"]}
        assert families == {"reversal", "slalom"}

    def test_submit_wrapped_spec_with_workers(self, api):
        _, rest = api
        response = rest.handle(
            "POST", "/campaigns", {"spec": CAMPAIGN_SPEC, "workers": 2}
        )
        assert response.status == 200
        assert response.body["remaining"] == 0

    def test_unknown_campaign_404(self, api):
        _, rest = api
        assert rest.handle("GET", "/campaigns/ghost").status == 404
        assert rest.handle("GET", "/campaigns/ghost/report").status == 404

    def test_bad_spec_400(self, api):
        _, rest = api
        response = rest.handle("POST", "/campaigns", {"name": "x"})
        assert response.status == 400
        assert "spec" in response.body["error"]
        assert rest.handle("POST", "/campaigns", "not-an-object").status == 400


class TestHttpBinding:
    def test_real_http_roundtrip(self, api):
        import json
        import urllib.request

        _, rest = api
        from repro.rest.http_binding import RestHttpServer

        server = RestHttpServer(rest, port=0)
        server.start()
        try:
            with urllib.request.urlopen(f"{server.url}/stats/switches") as response:
                assert response.status == 200
                assert len(json.loads(response.read())) == 12
            request = urllib.request.Request(
                f"{server.url}/stats/flowentry/add",
                data=json.dumps(
                    {"dpid": 1, "match": {"in_port": 1},
                     "actions": [{"type": "OUTPUT", "port": 2}]}
                ).encode(),
                method="POST",
            )
            with urllib.request.urlopen(request) as response:
                assert response.status == 200
        finally:
            server.stop()
