"""Tests for the retrying HTTP client (transient vs permanent failures)."""

import json
import threading
from http.server import BaseHTTPRequestHandler, HTTPServer

import pytest

from repro.errors import HttpStatusError, TransportError
from repro.rest.http_binding import HttpClient


class _ScriptedServer:
    """Serves a scripted sequence of (status, body) responses."""

    def __init__(self, script):
        self.script = list(script)
        self.requests = []
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def _respond(self):
                length = int(self.headers.get("Content-Length", 0))
                raw = self.rfile.read(length) if length else b""
                outer.requests.append((self.command, self.path, raw))
                status, body = (
                    outer.script.pop(0) if outer.script else (200, {})
                )
                data = json.dumps(body).encode()
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

            do_GET = do_POST = _respond

            def log_message(self, fmt, *args):
                pass

        self.server = HTTPServer(("127.0.0.1", 0), Handler)
        self.url = f"http://127.0.0.1:{self.server.server_address[1]}"
        self._thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self._thread.start()

    def stop(self):
        self.server.shutdown()
        self.server.server_close()


@pytest.fixture
def scripted():
    servers = []

    def start(script):
        server = _ScriptedServer(script)
        servers.append(server)
        return server

    yield start
    for server in servers:
        server.stop()


class TestRetryPolicy:
    def test_5xx_retries_until_success(self, scripted):
        server = scripted([(503, {"error": "warming up"}),
                           (503, {"error": "still warming"}),
                           (200, {"ready": True})])
        sleeps = []
        client = HttpClient(server.url, jitter_seed=0, sleep=sleeps.append)
        assert client.get("/status") == {"ready": True}
        assert len(sleeps) == 2
        assert len(server.requests) == 3

    def test_backoff_grows_and_caps(self, scripted):
        server = scripted([(503, {})] * 4 + [(200, {})])
        sleeps = []
        client = HttpClient(
            server.url, max_attempts=5, backoff_base_s=0.1,
            backoff_cap_s=0.25, jitter_seed=0, sleep=sleeps.append,
        )
        client.get("/x")
        bases = [0.1, 0.2, 0.25, 0.25]  # doubling, then capped
        assert len(sleeps) == 4
        for slept, base in zip(sleeps, bases):
            assert base <= slept <= base * 1.5  # jitter adds at most 50%

    def test_4xx_fails_fast_without_retry(self, scripted):
        server = scripted([(404, {"error": "no such campaign"})])
        sleeps = []
        client = HttpClient(server.url, sleep=sleeps.append)
        with pytest.raises(HttpStatusError) as excinfo:
            client.get("/campaigns/nope")
        assert excinfo.value.status == 404
        assert "no such campaign" in str(excinfo.value)
        assert sleeps == []
        assert len(server.requests) == 1

    def test_exhausted_retries_raise_transport_error(self, scripted):
        server = scripted([(500, {})] * 10)
        sleeps = []
        client = HttpClient(server.url, max_attempts=3, sleep=sleeps.append)
        with pytest.raises(TransportError, match="after 3 attempts"):
            client.get("/flaky")
        assert len(sleeps) == 2
        assert len(server.requests) == 3

    def test_connection_refused_is_transient(self):
        # allocate a port and close it so nothing is listening
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        sleeps = []
        client = HttpClient(
            f"http://127.0.0.1:{port}", max_attempts=2, sleep=sleeps.append
        )
        with pytest.raises(TransportError):
            client.get("/anything")
        assert len(sleeps) == 1

    def test_post_sends_json_body(self, scripted):
        server = scripted([(200, {"ok": True})])
        client = HttpClient(server.url, sleep=lambda s: None)
        assert client.post("/things", {"a": 1}) == {"ok": True}
        method, path, raw = server.requests[0]
        assert (method, path) == ("POST", "/things")
        assert json.loads(raw) == {"a": 1}
