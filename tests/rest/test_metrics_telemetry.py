"""REST tests for ``GET /metrics`` and the fabric telemetry route."""

import pytest

from repro.campaign import CampaignSpec
from repro.campaign.runner import run_cell
from repro.metrics import global_collector, reset_global_collector
from repro.rest.api import build_campaign_api, build_rest_api

SPEC = {
    "name": "telem",
    "families": [{"family": "reversal", "sizes": [4], "repeats": 2}],
    "schedulers": ["peacock"],
}


@pytest.fixture
def api(tmp_path):
    reset_global_collector()
    api = build_campaign_api(campaign_root=str(tmp_path))
    yield api
    api.campaigns.close()
    reset_global_collector()


def _serve(api, **options):
    response = api.handle("POST", "/campaigns/serve",
                          {"spec": SPEC, **options})
    assert response.status == 200, response.body
    return CampaignSpec.from_dict(SPEC).campaign_id


def _drain(api, campaign_id):
    """Work the campaign to completion through the REST verbs."""
    base = f"/campaigns/{campaign_id}/fabric"
    worker_id = api.handle(
        "POST", f"{base}/register", {"name": "wk"}
    ).body["worker_id"]
    while True:
        reply = api.handle(
            "POST", f"{base}/lease", {"worker_id": worker_id}
        ).body
        if not reply["cells"]:
            return worker_id
        for payload in reply["cells"]:
            record, timing = run_cell(payload)
            api.handle("POST", f"{base}/submit", {
                "worker_id": worker_id, "lease_id": reply["lease_id"],
                "cell_id": payload["cell_id"], "record": record,
                "timing": timing,
            })


class TestMetricsRoute:
    def test_plain_text_exposition(self, api):
        campaign_id = _serve(api)
        _drain(api, campaign_id)
        response = api.handle("GET", "/metrics")
        assert response.status == 200
        assert response.content_type.startswith("text/plain")
        assert isinstance(response.body, str)
        assert "# TYPE repro_fabric_leases_granted counter" in response.body
        assert "repro_fabric_cell_wall_ms_bucket" in response.body

    def test_oracle_counters_spliced_in(self, api):
        # run a cell so the aggregate oracle stats are non-trivial
        campaign_id = _serve(api)
        _drain(api, campaign_id)
        body = api.handle("GET", "/metrics").body
        assert "repro_oracle_" in body

    def test_served_on_the_full_api_too(self, tmp_path):
        from repro.controller.ofctl_rest import OfctlRestApp
        from repro.controller.ofctl_rest_own import TransientUpdateApp
        from repro.controller.update_queue import UpdateQueueApp
        from repro.netlab.network import Network
        from repro.topology.builders import figure1

        network = Network(figure1(with_hosts=True), seed=0)
        queue = UpdateQueueApp()
        ofctl = OfctlRestApp()
        update_app = TransientUpdateApp(network.topo, queue)
        for app in (queue, ofctl, update_app):
            network.controller.register_app(app)
        network.start()
        rest = build_rest_api(
            ofctl, update_app, queue, campaign_root=str(tmp_path)
        )
        response = rest.handle("GET", "/metrics")
        assert response.status == 200
        assert response.content_type.startswith("text/plain")

    def test_per_worker_labels_present(self, api):
        campaign_id = _serve(api)
        _drain(api, campaign_id)
        body = api.handle("GET", "/metrics").body
        assert 'repro_fabric_cells_leased{worker="' in body


class TestTelemetryRoute:
    def test_unknown_campaign_is_404(self, api):
        response = api.handle("GET", "/campaigns/nope/fabric/telemetry")
        assert response.status == 404

    def test_live_telemetry_shape(self, api):
        campaign_id = _serve(api)
        base = f"/campaigns/{campaign_id}/fabric"
        worker_id = api.handle(
            "POST", f"{base}/register", {"name": "wk"}
        ).body["worker_id"]
        api.handle("POST", f"{base}/lease", {"worker_id": worker_id})
        body = api.handle("GET", f"{base}/telemetry").body
        assert body["campaign"] == campaign_id
        assert body["finished"] is False
        assert body["total"] == 2
        assert body["uptime_s"] >= 0.0
        assert set(body["counters"]) >= {
            "leases_granted", "reclaims", "retries", "escalations",
        }
        [worker] = body["workers"]
        assert worker["worker_id"] == worker_id
        assert worker["alive"] is True
        assert worker["in_flight"] >= 1
        assert worker["lease_ages_s"]  # one age per open lease

    def test_finished_telemetry_counts_cells_done(self, api):
        campaign_id = _serve(api)
        worker_id = _drain(api, campaign_id)
        body = api.handle(
            "GET", f"/campaigns/{campaign_id}/fabric/telemetry"
        ).body
        assert body["finished"] is True
        assert body["done"] == body["total"] == 2
        [worker] = body["workers"]
        assert worker["worker_id"] == worker_id
        assert worker["cells_done"] == 2
        assert worker["in_flight"] == 0

    def test_dead_workers_stay_visible(self, api):
        campaign_id = _serve(api, heartbeat_timeout_s=0.0)
        base = f"/campaigns/{campaign_id}/fabric"
        api.handle("POST", f"{base}/register", {"name": "ghost"})
        # a zero heartbeat timeout means the worker ages out immediately
        # on the next reap; telemetry must still list it
        import time

        time.sleep(0.01)
        body = api.handle("GET", f"{base}/telemetry").body
        [worker] = body["workers"]
        assert worker["alive"] is False
        assert worker["last_seen_age_s"] is None
