"""Tests for the campaign fabric REST surface (serve + worker protocol)."""

import pytest

from repro.campaign import CampaignSpec
from repro.campaign.runner import run_cell
from repro.rest.api import build_campaign_api

SPEC = {
    "name": "restfab",
    "families": [{"family": "reversal", "sizes": [4]}],
    "schedulers": ["peacock"],
}


@pytest.fixture
def api(tmp_path):
    api = build_campaign_api(campaign_root=str(tmp_path))
    yield api
    api.campaigns.close()


def _serve(api, spec_dict=SPEC, **options):
    response = api.handle("POST", "/campaigns/serve",
                          {"spec": spec_dict, **options})
    assert response.status == 200, response.body
    return CampaignSpec.from_dict(spec_dict).campaign_id


class TestServe:
    def test_serve_returns_status(self, api):
        response = api.handle("POST", "/campaigns/serve", {"spec": SPEC})
        assert response.status == 200
        assert response.body["total"] == 1
        assert response.body["fabric"]["pending"] == 1

    def test_served_ids_listed(self, api):
        campaign_id = _serve(api)
        response = api.handle("GET", "/campaigns/fabric")
        assert response.body == {"campaigns": [campaign_id]}

    def test_bad_spec_is_400(self, api):
        response = api.handle("POST", "/campaigns/serve",
                              {"spec": {"name": "x"}})
        assert response.status == 400

    def test_missing_spec_is_400(self, api):
        assert api.handle("POST", "/campaigns/serve", {}).status == 400

    def test_unknown_option_is_400(self, api):
        response = api.handle("POST", "/campaigns/serve",
                              {"spec": SPEC, "lease_ttl": 5})
        assert response.status == 400
        assert "lease_ttl" in response.body["error"]

    def test_non_numeric_option_is_400(self, api):
        response = api.handle("POST", "/campaigns/serve",
                              {"spec": SPEC, "lease_cells": "many"})
        assert response.status == 400

    def test_double_serve_is_400(self, api):
        _serve(api)
        response = api.handle("POST", "/campaigns/serve", {"spec": SPEC})
        assert response.status == 400
        assert "already" in response.body["error"]

    def test_unknown_campaign_fabric_status_is_404(self, api):
        assert api.handle("GET", "/campaigns/nope/fabric").status == 404
        response = api.handle("POST", "/campaigns/nope/fabric/register", {})
        assert response.status == 404


class TestWorkerProtocol:
    def _register(self, api, campaign_id):
        response = api.handle(
            "POST", f"/campaigns/{campaign_id}/fabric/register",
            {"name": "t"},
        )
        assert response.status == 200
        return response.body["worker_id"]

    def test_full_protocol_roundtrip(self, api):
        campaign_id = _serve(api)
        worker_id = self._register(api, campaign_id)

        beat = api.handle("POST", f"/campaigns/{campaign_id}/fabric/heartbeat",
                          {"worker_id": worker_id})
        assert beat.body["ok"] is True and beat.body["done"] is False

        lease = api.handle("POST", f"/campaigns/{campaign_id}/fabric/lease",
                           {"worker_id": worker_id}).body
        assert len(lease["cells"]) == 1
        payload = lease["cells"][0]
        record, timing = run_cell(payload)

        submit = api.handle(
            "POST", f"/campaigns/{campaign_id}/fabric/submit",
            {"worker_id": worker_id, "lease_id": lease["lease_id"],
             "cell_id": payload["cell_id"], "record": record,
             "timing": timing},
        ).body
        assert submit == {"accepted": True, "duplicate": False, "done": True}

        # at-least-once delivery: the duplicate is a counted no-op
        duplicate = api.handle(
            "POST", f"/campaigns/{campaign_id}/fabric/submit",
            {"worker_id": worker_id, "lease_id": lease["lease_id"],
             "cell_id": payload["cell_id"], "record": record,
             "timing": timing},
        ).body
        assert duplicate["duplicate"] is True and duplicate["done"] is True

        status = api.handle("GET", f"/campaigns/{campaign_id}/fabric").body
        assert status["done"] == 1
        assert status["fabric"]["duplicate_submits"] == 1

    def test_lease_from_unregistered_worker(self, api):
        campaign_id = _serve(api)
        reply = api.handle("POST", f"/campaigns/{campaign_id}/fabric/lease",
                           {"worker_id": "w9-ghost"}).body
        assert reply["unknown_worker"] is True

    def test_missing_worker_id_is_400(self, api):
        campaign_id = _serve(api)
        for verb in ("heartbeat", "lease", "submit", "fail"):
            response = api.handle(
                "POST", f"/campaigns/{campaign_id}/fabric/{verb}", {}
            )
            assert response.status == 400, verb

    def test_submit_missing_record_is_400(self, api):
        campaign_id = _serve(api)
        worker_id = self._register(api, campaign_id)
        response = api.handle(
            "POST", f"/campaigns/{campaign_id}/fabric/submit",
            {"worker_id": worker_id, "lease_id": "l1", "cell_id": "c"},
        )
        assert response.status == 400

    def test_unknown_cell_is_400(self, api):
        campaign_id = _serve(api)
        worker_id = self._register(api, campaign_id)
        response = api.handle(
            "POST", f"/campaigns/{campaign_id}/fabric/fail",
            {"worker_id": worker_id, "lease_id": "l1",
             "cell_id": "no-such-cell"},
        )
        assert response.status == 400

    def test_unknown_verb_is_404(self, api):
        campaign_id = _serve(api)
        response = api.handle(
            "POST", f"/campaigns/{campaign_id}/fabric/destroy",
            {"worker_id": "w"},
        )
        assert response.status == 404

    def test_completed_campaign_queryable_via_plain_routes(self, api):
        campaign_id = _serve(api)
        worker_id = self._register(api, campaign_id)
        lease = api.handle("POST", f"/campaigns/{campaign_id}/fabric/lease",
                           {"worker_id": worker_id}).body
        payload = lease["cells"][0]
        record, timing = run_cell(payload)
        api.handle("POST", f"/campaigns/{campaign_id}/fabric/submit",
                   {"worker_id": worker_id, "lease_id": lease["lease_id"],
                    "cell_id": payload["cell_id"], "record": record,
                    "timing": timing})
        # the folded results are visible through the ordinary store routes
        assert api.handle("GET", f"/campaigns/{campaign_id}").body["done"] == 1
        report = api.handle("GET", f"/campaigns/{campaign_id}/report").body
        assert report["campaign_id"] == campaign_id
        assert len(report["rows"]) == 1
