"""Shared-secret auth on the HTTP binding (``X-Repro-Auth``).

Binding beyond loopback demands a token; a token mismatch must 401
*immediately* (fast-fail, no transient-retry loop), and a matching
token must be invisible -- every verb works exactly as unauthenticated
loopback does.
"""

import pytest

from repro.campaign import CampaignSpec
from repro.campaign.fabric.transport import HttpFabricClient
from repro.campaign.runner import run_cell
from repro.errors import HttpStatusError
from repro.rest.api import build_campaign_api
from repro.rest.http_binding import RestHttpServer, HttpClient

SPEC = {
    "name": "auth",
    "seed": 3,
    "families": [{"family": "reversal", "sizes": [4]}],
    "schedulers": ["peacock"],
}

TOKEN = "s3cret-fleet-token"


@pytest.fixture
def served(tmp_path):
    """A token-guarded server with SPEC already being served."""
    api = build_campaign_api(campaign_root=str(tmp_path))
    response = api.handle("POST", "/campaigns/serve", {"spec": SPEC})
    assert response.status == 200, response.body
    server = RestHttpServer(api, port=0, token=TOKEN)
    server.start()
    try:
        yield server
    finally:
        server.stop()
        api.campaigns.close()


class TestTokenGate:
    def test_missing_token_fails_fast_with_401(self, served):
        sleeps = []
        client = HttpClient(served.url, sleep=sleeps.append)
        with pytest.raises(HttpStatusError) as err:
            client.get("/campaigns")
        assert err.value.status == 401
        # 4xx means "the request is wrong, not the weather": no retries
        assert sleeps == []

    def test_wrong_token_fails_fast_with_401(self, served):
        sleeps = []
        client = HttpClient(
            served.url, token="not-the-token", sleep=sleeps.append
        )
        with pytest.raises(HttpStatusError) as err:
            client.post("/campaigns/serve", {"spec": SPEC})
        assert err.value.status == 401
        assert sleeps == []

    def test_matching_token_is_invisible(self, served):
        client = HttpClient(served.url, token=TOKEN)
        assert CampaignSpec.from_dict(SPEC).campaign_id in client.get(
            "/campaigns"
        )

    def test_fabric_worker_verbs_end_to_end(self, served):
        campaign_id = CampaignSpec.from_dict(SPEC).campaign_id
        fabric = HttpFabricClient(served.url, campaign_id, token=TOKEN)
        worker_id = fabric.register({"name": "authed"})["worker_id"]
        lease = fabric.lease(worker_id)
        assert lease["cells"]
        for payload in lease["cells"]:
            record, timing = run_cell(payload)
            reply = fabric.submit(
                worker_id, lease["lease_id"], payload["cell_id"],
                record, timing,
            )
            assert reply["accepted"]
        assert fabric.deregister(worker_id)["ok"]

    def test_mismatched_fabric_client_fast_fails(self, served):
        campaign_id = CampaignSpec.from_dict(SPEC).campaign_id
        fabric = HttpFabricClient(served.url, campaign_id, token="wrong")
        with pytest.raises(HttpStatusError) as err:
            fabric.register({"name": "intruder"})
        assert err.value.status == 401


class TestBindPolicy:
    def test_non_loopback_bind_requires_token(self, tmp_path):
        api = build_campaign_api(campaign_root=str(tmp_path))
        try:
            with pytest.raises(ValueError, match="--token"):
                RestHttpServer(api, port=0, host="0.0.0.0")
        finally:
            api.campaigns.close()

    def test_non_loopback_bind_with_token_serves(self, tmp_path):
        api = build_campaign_api(campaign_root=str(tmp_path))
        server = RestHttpServer(api, port=0, host="0.0.0.0", token=TOKEN)
        server.start()
        try:
            assert server.url.startswith("http://127.0.0.1:")
            assert HttpClient(server.url, token=TOKEN).get(
                "/campaigns"
            ) == []
        finally:
            server.stop()
            api.campaigns.close()

    def test_loopback_stays_tokenless(self, tmp_path):
        api = build_campaign_api(campaign_root=str(tmp_path))
        server = RestHttpServer(api, port=0)
        server.start()
        try:
            assert HttpClient(server.url).get("/campaigns") == []
        finally:
            server.stop()
            api.campaigns.close()
