"""Tests for the packet model and its byte codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataplane.packets import (
    Packet,
    icmp_ping,
    ipv4_checksum,
    tcp_packet,
    udp_packet,
)
from repro.errors import OpenFlowError
from repro.openflow.constants import IP_PROTO_ICMP, IP_PROTO_TCP, IP_PROTO_UDP


class TestFields:
    def test_tcp_fields(self):
        packet = tcp_packet("10.0.0.1", "10.0.0.2", dst_port=443)
        fields = packet.fields(in_port=3)
        assert fields["in_port"] == 3
        assert fields["ipv4_dst"] == "10.0.0.2"
        assert fields["tcp_dst"] == 443
        assert "udp_dst" not in fields

    def test_udp_fields(self):
        packet = udp_packet("10.0.0.1", "10.0.0.2", dst_port=53)
        fields = packet.fields()
        assert fields["udp_dst"] == 53
        assert "tcp_dst" not in fields

    def test_vlan_field_only_when_tagged(self):
        assert "vlan_vid" not in Packet().fields()
        assert Packet().with_vlan(7).fields()["vlan_vid"] == 7

    def test_with_field(self):
        packet = Packet().with_field("ipv4_dst", "1.2.3.4")
        assert packet.ipv4_dst == "1.2.3.4"
        with pytest.raises(OpenFlowError):
            Packet().with_field("no_such_field", 1)

    def test_vlan_add_remove(self):
        tagged = Packet().with_vlan(2)
        assert tagged.vlan_vid == 2
        assert tagged.without_vlan().vlan_vid is None

    def test_ttl_decrement(self):
        assert Packet(ttl=5).decrement_ttl().ttl == 4


class TestChecksum:
    def test_known_value(self):
        # RFC 1071 example-style check: checksum of header with zero
        # checksum field, then verify the full header sums to 0xFFFF
        packet = Packet()
        raw = packet.to_bytes()
        ip_header = raw[14:34]
        # re-summing a valid header (checksum included) gives zero
        assert ipv4_checksum(ip_header) == 0

    def test_odd_length_padded(self):
        assert ipv4_checksum(b"\x01") == ipv4_checksum(b"\x01\x00")


class TestByteCodec:
    @pytest.mark.parametrize("packet", [
        Packet(),
        tcp_packet("10.0.0.1", "10.0.0.2", dst_port=8080, payload=b"hello"),
        udp_packet("192.168.0.1", "8.8.8.8", dst_port=53, payload=b"q"),
        icmp_ping("10.0.0.1", "10.0.0.9"),
        Packet(vlan_vid=2, payload=b"tagged"),
        Packet(ttl=1),
    ])
    def test_roundtrip(self, packet):
        back = Packet.from_bytes(packet.to_bytes())
        assert back.eth_src == packet.eth_src
        assert back.eth_dst == packet.eth_dst
        assert back.vlan_vid == packet.vlan_vid
        assert back.ipv4_src == packet.ipv4_src
        assert back.ipv4_dst == packet.ipv4_dst
        assert back.ip_proto == packet.ip_proto
        assert back.ttl == packet.ttl
        assert back.payload == packet.payload
        if packet.ip_proto in (IP_PROTO_TCP, IP_PROTO_UDP):
            assert back.tcp_src == packet.tcp_src
            assert back.tcp_dst == packet.tcp_dst

    def test_non_ip_frame(self):
        packet = Packet(eth_type=0x0806, payload=b"arp-ish")
        back = Packet.from_bytes(packet.to_bytes())
        assert back.eth_type == 0x0806
        assert back.payload == b"arp-ish"

    def test_short_frame_rejected(self):
        with pytest.raises(OpenFlowError):
            Packet.from_bytes(b"\x00" * 5)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(0, 255), min_size=4, max_size=4),
        st.lists(st.integers(0, 255), min_size=4, max_size=4),
        st.sampled_from([IP_PROTO_TCP, IP_PROTO_UDP, IP_PROTO_ICMP]),
        st.integers(min_value=0, max_value=0xFFFF),
        st.binary(max_size=40),
        st.one_of(st.none(), st.integers(min_value=0, max_value=0xFFF)),
    )
    def test_property_roundtrip(self, src, dst, proto, port, payload, vlan):
        packet = Packet(
            ipv4_src=".".join(map(str, src)),
            ipv4_dst=".".join(map(str, dst)),
            ip_proto=proto,
            tcp_dst=port,
            payload=payload,
            vlan_vid=vlan,
        )
        back = Packet.from_bytes(packet.to_bytes())
        assert back.ipv4_src == packet.ipv4_src
        assert back.ipv4_dst == packet.ipv4_dst
        assert back.payload == packet.payload
        assert back.vlan_vid == packet.vlan_vid
