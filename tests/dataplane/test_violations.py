"""Tests for violation accounting types."""

from repro.dataplane.violations import PacketFate, TraceRecord, ViolationCounters


class TestTraceRecord:
    def test_basics(self):
        trace = TraceRecord(packet_id=1, injected_ms=10.0, path=[1, 2, 3])
        assert trace.hops == 3
        assert trace.visited(2) and not trace.visited(9)
        assert trace.latency_ms is None
        trace.completed_ms = 12.5
        assert trace.latency_ms == 2.5


class TestCounters:
    def test_record_each_fate(self):
        counters = ViolationCounters()
        for fate in PacketFate:
            counters.record(fate)
        assert counters.delivered == 1
        assert counters.bypassed_waypoint == 1
        assert counters.looped == 1
        assert counters.dropped == 1
        assert counters.in_flight == 1

    def test_violations_sum(self):
        counters = ViolationCounters(injected=10)
        counters.bypassed_waypoint = 2
        counters.looped = 1
        counters.dropped = 3
        assert counters.violations == 6
        assert counters.violation_rate == 0.6

    def test_zero_injected_rate(self):
        assert ViolationCounters().violation_rate == 0.0

    def test_as_dict(self):
        counters = ViolationCounters(injected=4, delivered=4)
        data = counters.as_dict()
        assert data["injected"] == 4
        assert data["violation_rate"] == 0.0
