"""Tests for periodic traffic injection."""

import pytest

from repro.controller.rules import compile_initial_rules
from repro.core.problem import UpdateProblem
from repro.dataplane.injector import FlowSpec, InjectionResult, PeriodicInjector
from repro.dataplane.packets import udp_packet
from repro.dataplane.violations import PacketFate, TraceRecord
from repro.netlab.network import Network
from repro.openflow.match import Match
from repro.topology.builders import linear


@pytest.fixture
def net():
    network = Network(linear(3, with_hosts=True), seed=0)
    network.start()
    match = Match(eth_type=0x0800, ipv4_dst=network.host("h2").ip)
    mods = compile_initial_rules(
        network.topo,
        UpdateProblem([1, 2, 3], [1, 2, 3]),
        match,
        egress_port=network.host("h2").switch_port,
    )
    network.send_flow_mods(mods)
    network.flush()
    return network


class TestPeriodicInjector:
    def test_injects_at_cadence(self, net):
        flow = FlowSpec(source_host="h1", destination_host="h2")
        injector = PeriodicInjector(net, flow, interval_ms=2.0)
        start = net.sim.now  # bootstrap traffic already advanced the clock
        injector.start()
        horizon = start + 10.0
        net.sim.run(until=horizon)
        injector.stop()
        net.flush()
        injector.result.finalize()
        expected = int(10.0 / 2.0) + 1  # ticks at start, +2, ..., +10
        assert abs(injector.result.counters.injected - expected) <= 1
        assert injector.result.counters.delivered == injector.result.counters.injected
        times = [t.injected_ms for t in injector.result.traces]
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(abs(gap - 2.0) < 1e-6 for gap in gaps)

    def test_max_packets_cap(self, net):
        flow = FlowSpec(source_host="h1", destination_host="h2")
        injector = PeriodicInjector(net, flow, interval_ms=0.1, max_packets=5)
        injector.start()
        net.flush()
        assert len(injector.result.traces) == 5

    def test_start_idempotent(self, net):
        flow = FlowSpec(source_host="h1", destination_host="h2")
        injector = PeriodicInjector(net, flow, interval_ms=1.0, max_packets=3)
        injector.start()
        injector.start()
        net.flush()
        assert len(injector.result.traces) == 3

    def test_custom_packet_factory(self, net):
        h1, h2 = net.host("h1"), net.host("h2")
        flow = FlowSpec(
            source_host="h1",
            destination_host="h2",
            packet_factory=lambda: udp_packet(h1.ip, h2.ip, dst_port=9999),
        )
        injector = PeriodicInjector(net, flow, interval_ms=1.0, max_packets=2)
        injector.start()
        net.flush()
        # the line's rules match on ipv4_dst, so UDP probes still deliver
        injector.result.finalize()
        assert injector.result.counters.delivered == 2

    def test_waypoint_annotation(self, net):
        flow = FlowSpec(source_host="h1", destination_host="h2", waypoint=2)
        injector = PeriodicInjector(net, flow, interval_ms=1.0, max_packets=2)
        injector.start()
        net.flush()
        injector.result.finalize()
        assert injector.result.counters.delivered == 2  # 2 is on the path

    def test_violating_traces_filter(self):
        result = InjectionResult()
        result.traces.append(
            TraceRecord(packet_id=1, injected_ms=0.0, fate=PacketFate.DELIVERED)
        )
        result.traces.append(
            TraceRecord(packet_id=2, injected_ms=0.0, fate=PacketFate.LOOPED)
        )
        assert [t.packet_id for t in result.violating_traces()] == [2]

    def test_finalize_recounts(self):
        result = InjectionResult()
        result.traces.append(
            TraceRecord(packet_id=1, injected_ms=0.0, fate=PacketFate.DROPPED)
        )
        counters = result.finalize()
        assert counters.injected == 1 and counters.dropped == 1
