"""Tests for the churn campaign families and the runner's churn branch."""

import pytest

from repro.campaign import CampaignSpec, run_cell
from repro.campaign.families import (
    build_unit,
    known_families,
    single_problem,
    validate_family,
)
from repro.errors import CampaignSpecError

CHURN_SPEC = {
    "name": "churn-sweep",
    "seed": 7,
    "families": [
        {
            "family": "churn-fat-tree",
            "sizes": [4],
            "params": {"rate_per_s": 40, "duration_ms": 150},
        },
    ],
    "schedulers": ["greedy-slf", "oneshot"],
    "verify": True,
}


def _payload(spec_dict, cell_id):
    for cell in CampaignSpec.from_dict(spec_dict).expand():
        if cell.cell_id == cell_id:
            return cell.payload()
    raise KeyError(cell_id)


class TestFamilies:
    def test_churn_families_registered(self):
        assert {"churn-fat-tree", "churn-wan"} <= known_families()

    def test_unit_carries_a_trace_not_problems(self):
        unit = build_unit("churn-fat-tree", 4, {"duration_ms": 100}, 7)
        assert unit.trace is not None
        assert unit.problems == ()
        assert unit.trace.kind == "fat-tree" and unit.trace.size == 4

    def test_build_is_deterministic(self):
        first = build_unit("churn-wan", 12, {"duration_ms": 100}, 5)
        second = build_unit("churn-wan", 12, {"duration_ms": 100}, 5)
        assert first.trace.events == second.trace.events

    def test_odd_fat_tree_arity_rejected(self):
        with pytest.raises(CampaignSpecError):
            validate_family("churn-fat-tree", [5], {}, {})

    def test_unknown_param_rejected(self):
        with pytest.raises(CampaignSpecError):
            validate_family("churn-wan", [12], {"burst": 2}, {})

    def test_trace_param_accepted(self):
        validate_family("churn-wan", [12], {"rate_per_s": 10}, {})

    def test_single_problem_refuses_trace_units(self):
        with pytest.raises(CampaignSpecError):
            single_problem("churn-fat-tree", 4, {}, 7)


class TestRunCell:
    def test_scheduled_cell_verified_clean(self):
        record, timing = run_cell(
            _payload(CHURN_SPEC, "churn-fat-tree-duration_ms150-rate_per_s40-n4-r0@greedy-slf")
        )
        assert record["status"] == "ok"
        assert record["verified"] is True
        assert record["rounds"] > 0 and record["touches"] > 0
        assert "violations=0" in record["detail"]
        assert timing["wall_ms"] >= 0

    def test_oneshot_cell_not_verified(self):
        record, _ = run_cell(_payload(CHURN_SPEC, "churn-fat-tree-duration_ms150-rate_per_s40-n4-r0@oneshot"))
        assert record["status"] == "ok"
        assert record["verified"] is None  # oneshot guarantees nothing
        assert "violations=" in record["detail"]
        assert "violations=0" not in record["detail"]

    def test_cells_are_deterministic(self):
        payload = _payload(CHURN_SPEC, "churn-fat-tree-duration_ms150-rate_per_s40-n4-r0@greedy-slf")
        first, _ = run_cell(payload)
        second, _ = run_cell(payload)
        assert first == second
