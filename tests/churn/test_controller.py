"""Tests for the online churn controller.

Hand-built single-flow traces on a diamond topology pin down the
lifecycle machinery (cancel windows, preempt vs defer, failure-driven
re-planning, restorations); generated fat-tree traces check the
system-level contracts (scheduled runs are violation-free, the
unscheduled baseline is not, same trace → same metrics).
"""

import pytest

from repro.churn.controller import ChurnPolicy, run_churn
from repro.churn.events import (
    ChurnError,
    LinkFailure,
    UpdateArrival,
    UpdateCancel,
    event_sort_key,
)
from repro.churn.traces import ChurnTrace, FlowSpec, generate_trace
from repro.topology.graph import Topology

OLD_PATH = (1, 2, 3, 5)


def diamond(extra_links=()) -> Topology:
    topo = Topology("diamond")
    for node in range(1, 7):
        topo.add_switch(node)
    for a, b in [(1, 2), (2, 3), (3, 5), (1, 4), (4, 5), (1, 6), (6, 5),
                 *extra_links]:
        topo.add_link(a, b)
    return topo


def hand_trace(events, flows=None, topo=None) -> ChurnTrace:
    topo = topo or diamond()
    flows = flows if flows is not None else (FlowSpec("f0", OLD_PATH),)
    return ChurnTrace(
        name="hand",
        kind="hand",
        size=0,
        seed=3,
        topology=topo,
        flows=tuple(flows),
        events=tuple(sorted(events, key=event_sort_key)),
        duration_ms=100.0,
    )


def arrival(time_ms, request_id, target, flow_id="f0", waypointed=False):
    return UpdateArrival(
        time_ms=time_ms,
        request_id=request_id,
        flow_id=flow_id,
        target_path=tuple(target),
        waypointed=waypointed,
    )


def hops(path):
    return set(zip(path, path[1:]))


class TestSingleUpdate:
    def test_simple_arrival_completes_clean(self):
        trace = hand_trace([arrival(1.0, "r0", (1, 4, 5))])
        metrics = run_churn(trace)
        assert metrics.quiescent
        assert metrics.arrivals == 1 and metrics.completed == 1
        assert metrics.transient_violations == 0
        record = metrics.lifecycle("r0")
        assert record.status == "done"
        # install 4, switch 1, then clean up 2 and 3: three safe rounds
        assert len(record.rounds) == 3
        assert record.flips == 4
        assert all(t.finished_ms is not None for t in record.rounds)

    def test_noop_arrival_settles_without_rounds(self):
        trace = hand_trace([arrival(1.0, "r0", OLD_PATH)])
        metrics = run_churn(trace)
        assert metrics.noops == 1
        record = metrics.lifecycle("r0")
        assert record.status == "noop"
        assert record.flips == 0 and not record.rounds

    def test_waypointed_update_completes_clean(self):
        trace = hand_trace(
            [arrival(1.0, "r0", (1, 2, 3, 4, 5), waypointed=True)],
            topo=diamond(extra_links=[(3, 4)]),
        )
        metrics = run_churn(trace)
        record = metrics.lifecycle("r0")
        assert record.status == "done"
        assert record.waypointed
        assert metrics.transient_violations == 0

    def test_concurrent_flows_tracked_in_flight(self):
        flows = (FlowSpec("f0", OLD_PATH), FlowSpec("f1", (1, 6, 5)))
        trace = hand_trace(
            [arrival(0.0, "r0", (1, 4, 5), flow_id="f0"),
             arrival(0.0, "r1", (1, 2, 3, 5), flow_id="f1")],
            flows=flows,
        )
        metrics = run_churn(trace)
        assert metrics.completed == 2
        assert metrics.peak_in_flight == 2
        assert metrics.transient_violations == 0

    def test_unknown_flow_is_a_trace_error(self):
        trace = hand_trace([arrival(1.0, "r0", (1, 4, 5), flow_id="ghost")])
        with pytest.raises(ChurnError):
            run_churn(trace)


class TestCancellation:
    def test_cancel_in_plan_window_retracts_everything(self):
        # plan at t=1, issue at t=1+plan_latency(2): cancel lands between
        trace = hand_trace([
            arrival(1.0, "r0", (1, 4, 5)),
            UpdateCancel(time_ms=2.0, request_id="r0"),
        ])
        metrics = run_churn(trace)
        record = metrics.lifecycle("r0")
        assert record.status == "cancelled"
        assert record.flips == 0 and not record.rounds
        assert metrics.rounds_issued == 0
        assert metrics.cancelled == 1

    def test_cancel_mid_round_finishes_the_round_first(self):
        # round 1 issues at t=2 and flips at t=3; cancel at t=2.5
        trace = hand_trace([
            arrival(0.0, "r0", (1, 4, 5)),
            UpdateCancel(time_ms=2.5, request_id="r0"),
        ])
        metrics = run_churn(trace)
        record = metrics.lifecycle("r0")
        assert record.status == "cancelled"
        assert record.flips >= 1          # the issued round was not torn up
        assert len(record.rounds) == 1    # but no further round was planned
        assert metrics.transient_violations == 0

    def test_cancel_of_queued_request(self):
        trace = hand_trace([
            arrival(0.0, "r0", (1, 4, 5)),
            arrival(0.5, "r1", (1, 6, 5)),
            UpdateCancel(time_ms=1.0, request_id="r1"),
        ])
        metrics = run_churn(trace, ChurnPolicy(preempt=False))
        assert metrics.lifecycle("r0").status == "done"
        assert metrics.lifecycle("r1").status == "cancelled"
        assert metrics.lifecycle("r1").flips == 0

    def test_cancel_of_settled_or_unknown_request_is_noop(self):
        trace = hand_trace([
            arrival(0.0, "r0", (1, 4, 5)),
            UpdateCancel(time_ms=50.0, request_id="r0"),
            UpdateCancel(time_ms=1.0, request_id="ghost"),
        ])
        metrics = run_churn(trace)
        assert metrics.lifecycle("r0").status == "done"
        assert metrics.cancels_noop == 2


class TestMidUpdateArrivals:
    def test_preempt_supersedes_planning_update(self):
        trace = hand_trace([
            arrival(0.0, "r0", (1, 4, 5)),
            arrival(0.5, "r1", (1, 6, 5)),
        ])
        metrics = run_churn(trace, ChurnPolicy(preempt=True))
        old = metrics.lifecycle("r0")
        assert old.status == "superseded"
        assert old.flips == 0  # retracted inside the plan window
        assert metrics.lifecycle("r1").status == "done"
        assert metrics.superseded == 1

    def test_defer_runs_both_to_completion(self):
        trace = hand_trace([
            arrival(0.0, "r0", (1, 4, 5)),
            arrival(0.5, "r1", (1, 6, 5)),
        ])
        metrics = run_churn(trace, ChurnPolicy(preempt=False))
        assert metrics.lifecycle("r0").status == "done"
        assert metrics.lifecycle("r1").status == "done"
        assert metrics.completed == 2
        assert metrics.superseded == 0
        # the deferred request started only after the first settled
        first = metrics.lifecycle("r0")
        second = metrics.lifecycle("r1")
        assert second.started_ms >= first.settled_ms

    def test_preempt_chain_keeps_only_newest(self):
        trace = hand_trace([
            arrival(0.0, "r0", (1, 4, 5)),
            arrival(0.2, "r1", (1, 6, 5)),
            arrival(0.4, "r2", (1, 4, 5)),
        ])
        metrics = run_churn(trace, ChurnPolicy(preempt=True))
        assert metrics.lifecycle("r0").status == "superseded"
        assert metrics.lifecycle("r1").status == "superseded"
        assert metrics.lifecycle("r2").status == "done"


class TestLinkFailures:
    def test_failure_forces_replan_off_dead_target(self):
        trace = hand_trace([
            arrival(0.0, "r0", (1, 4, 5)),
            LinkFailure(time_ms=0.5, link=(4, 5)),
        ])
        metrics = run_churn(trace)
        assert metrics.quiescent
        assert metrics.replans >= 1
        record = metrics.lifecycle("r0")
        assert record.status in ("done", "noop")
        # re-run with direct controller access to inspect the final path
        from repro.churn.controller import OnlineChurnController

        controller = OnlineChurnController(trace)
        controller.run()
        final = controller.flows["f0"].current_path
        assert (4, 5) not in hops(final) and (5, 4) not in hops(final)

    def test_failure_restores_stranded_idle_flow(self):
        trace = hand_trace([LinkFailure(time_ms=1.0, link=(2, 3))])
        from repro.churn.controller import OnlineChurnController

        controller = OnlineChurnController(trace)
        metrics = controller.run()
        assert metrics.restorations == 1
        record = metrics.lifecycle("f0-restore1")
        assert record.status == "done"
        final = controller.flows["f0"].current_path
        assert (2, 3) not in hops(final) and (3, 2) not in hops(final)
        assert metrics.quiescent

    def test_arrival_onto_already_dead_path_reroutes(self):
        trace = hand_trace([
            LinkFailure(time_ms=0.5, link=(4, 5)),
            arrival(1.0, "r0", (1, 4, 5)),
        ])
        from repro.churn.controller import OnlineChurnController

        controller = OnlineChurnController(trace)
        metrics = controller.run()
        record = metrics.lifecycle("r0")
        assert record.status in ("done", "noop")
        assert record.replans >= 1 or record.status == "noop"
        final = controller.flows["f0"].current_path
        assert (4, 5) not in hops(final) and (5, 4) not in hops(final)


class TestSystemContracts:
    def test_scheduled_run_is_violation_free(self):
        trace = generate_trace("fat-tree", 4, 7, duration_ms=200.0)
        metrics = run_churn(trace, ChurnPolicy(scheduled=True))
        assert metrics.quiescent
        assert metrics.transient_violations == 0
        assert metrics.violations.injected > 0  # probes actually ran

    def test_unscheduled_baseline_shows_violations(self):
        trace = generate_trace("fat-tree", 4, 7, duration_ms=200.0)
        metrics = run_churn(trace, ChurnPolicy(scheduled=False))
        assert metrics.quiescent
        assert metrics.transient_violations > 0

    def test_same_trace_same_metrics(self):
        trace = generate_trace("fat-tree", 4, 7, duration_ms=200.0)
        first = run_churn(trace, ChurnPolicy(scheduled=True)).to_dict()
        second = run_churn(trace, ChurnPolicy(scheduled=True)).to_dict()
        assert first == second
