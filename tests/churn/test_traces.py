"""Tests for the seeded churn-trace generators."""

import random

import pytest

from repro.churn.events import LinkFailure, UpdateArrival, UpdateCancel
from repro.churn.traces import (
    ChurnError,
    generate_trace,
    sample_simple_path,
    trace_params,
)
from repro.topology.graph import Topology


def diamond() -> Topology:
    topo = Topology("diamond")
    for node in range(1, 7):
        topo.add_switch(node)
    for a, b in [(1, 2), (2, 3), (3, 5), (1, 4), (4, 5), (1, 6), (6, 5)]:
        topo.add_link(a, b)
    return topo


class TestDeterminism:
    def test_same_seed_same_trace(self):
        first = generate_trace("fat-tree", 4, 5, duration_ms=200.0)
        second = generate_trace("fat-tree", 4, 5, duration_ms=200.0)
        assert first.events == second.events
        assert first.flows == second.flows
        assert first.summary() == second.summary()

    def test_different_seed_different_events(self):
        first = generate_trace("fat-tree", 4, 5, duration_ms=200.0)
        second = generate_trace("fat-tree", 4, 6, duration_ms=200.0)
        assert first.events != second.events

    def test_wan_kind_generates(self):
        trace = generate_trace("wan", 16, 3, duration_ms=150.0)
        assert trace.kind == "wan"
        assert trace.arrivals


class TestShape:
    def test_events_are_time_sorted(self):
        trace = generate_trace("fat-tree", 4, 9, duration_ms=300.0)
        times = [event.time_ms for event in trace.events]
        assert times == sorted(times)

    def test_cancels_reference_prior_arrivals(self):
        trace = generate_trace(
            "fat-tree", 4, 11, duration_ms=400.0, cancel_prob=0.5
        )
        arrivals = {e.request_id: e for e in trace.events
                    if isinstance(e, UpdateArrival)}
        cancels = [e for e in trace.events if isinstance(e, UpdateCancel)]
        assert cancels  # p=0.5 over dozens of arrivals
        for cancel in cancels:
            assert cancel.request_id in arrivals
            assert cancel.time_ms >= arrivals[cancel.request_id].time_ms

    def test_knobs_can_silence_event_kinds(self):
        trace = generate_trace(
            "fat-tree", 4, 13, duration_ms=300.0,
            cancel_prob=0.0, link_failures=0, waypoint_prob=0.0,
        )
        assert not any(isinstance(e, UpdateCancel) for e in trace.events)
        assert not any(isinstance(e, LinkFailure) for e in trace.events)
        assert not any(e.waypointed for e in trace.arrivals)

    def test_failures_hit_fabric_links_only(self):
        trace = generate_trace(
            "fat-tree", 4, 17, duration_ms=300.0, link_failures=3
        )
        switches = set(trace.topology.switches())
        failures = [e for e in trace.events if isinstance(e, LinkFailure)]
        assert len(failures) == 3
        for failure in failures:
            u, v = failure.link
            assert u in switches and v in switches

    def test_arrival_targets_match_flow_endpoints(self):
        trace = generate_trace("fat-tree", 4, 19, duration_ms=200.0)
        flows = {flow.flow_id: flow for flow in trace.flows}
        for arrival in trace.arrivals:
            flow = flows[arrival.flow_id]
            assert arrival.target_path[0] == flow.source
            assert arrival.target_path[-1] == flow.destination


class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(ChurnError):
            generate_trace("torus", 4, 1)

    def test_bad_rate_and_duration(self):
        with pytest.raises(ChurnError):
            generate_trace("fat-tree", 4, 1, rate_per_s=0.0)
        with pytest.raises(ChurnError):
            generate_trace("fat-tree", 4, 1, duration_ms=-1.0)

    def test_trace_params_rejects_unknown_keys(self):
        with pytest.raises(ChurnError) as err:
            trace_params({"rate_per_s": 10, "burst": 3})
        assert "burst" in str(err.value)

    def test_trace_params_coerces_types(self):
        kwargs = trace_params({"rate_per_s": "25", "flows": "4",
                               "link_failures": "2"})
        assert kwargs == {"rate_per_s": 25.0, "flows": 4, "link_failures": 2}


class TestSampleSimplePath:
    def test_respects_avoided_links(self):
        topo = diamond()
        rng = random.Random(0)
        for _ in range(20):
            path = sample_simple_path(topo, 1, 5, rng, avoid_links=[(2, 3)])
            assert path is not None
            assert path[0] == 1 and path[-1] == 5
            hops = set(zip(path, path[1:]))
            assert (2, 3) not in hops and (3, 2) not in hops

    def test_returns_none_when_cut_off(self):
        topo = Topology("pair")
        topo.add_switch(1)
        topo.add_switch(2)
        topo.add_link(1, 2)
        assert sample_simple_path(
            topo, 1, 2, random.Random(0), avoid_links=[(1, 2)]
        ) is None
