"""Tests for the ``repro churn run`` CLI verb."""

import json

from repro.cli.main import build_parser, main

FAST = ["--duration", "150", "--rate", "40", "--seed", "7"]


class TestParser:
    def test_churn_run_registered(self):
        args = build_parser().parse_args(["churn", "run", "--size", "6"])
        assert args.command == "churn"
        assert args.churn_command == "run"
        assert args.size == 6

    def test_defaults(self):
        args = build_parser().parse_args(["churn", "run"])
        assert args.kind == "fat-tree"
        assert not args.unscheduled and not args.defer
        assert args.replan_budget == 2


class TestRun:
    def test_scheduled_run_exits_clean(self, capsys):
        code = main(["churn", "run", *FAST])
        out = capsys.readouterr().out
        assert code == 0
        assert "churn /" in out
        assert "transient_violations" in out
        assert "quiescent" in out

    def test_json_output_shape(self, capsys):
        code = main(["churn", "run", *FAST, "--json"])
        data = json.loads(capsys.readouterr().out)
        assert code == 0
        assert data["policy"]["scheduled"] is True
        assert data["metrics"]["quiescent"] is True
        assert data["metrics"]["transient_violations"] == 0
        assert data["trace"]["kind"] == "fat-tree"
        assert data["metrics"]["lifecycles"]

    def test_unscheduled_baseline_still_exits_zero(self, capsys):
        code = main(["churn", "run", *FAST, "--unscheduled", "--json"])
        data = json.loads(capsys.readouterr().out)
        assert code == 0  # the baseline is allowed its violations
        assert data["policy"]["scheduled"] is False
        assert data["metrics"]["transient_violations"] > 0

    def test_defer_knob_reaches_policy(self, capsys):
        code = main(["churn", "run", *FAST, "--defer", "--json"])
        data = json.loads(capsys.readouterr().out)
        assert code == 0
        assert data["policy"]["preempt"] is False
