"""Tests for churn-run accounting."""

import json

import pytest

from repro.churn.metrics import ChurnMetrics, UpdateLifecycle
from repro.controller.update_queue import RoundTiming
from repro.dataplane.violations import PacketFate


def _record(request_id="r0"):
    return UpdateLifecycle(request_id=request_id, flow_id="f0", arrived_ms=1.0)


class TestProbeAccounting:
    def test_clean_probe(self):
        metrics = ChurnMetrics()
        record = _record()
        metrics.record_probe(record, PacketFate.DELIVERED, crossed_failed_link=False)
        assert metrics.violations.injected == 1
        assert metrics.transient_violations == 0
        assert record.probes == 1 and record.violations == 0

    def test_violating_probe(self):
        metrics = ChurnMetrics()
        record = _record()
        metrics.record_probe(record, PacketFate.LOOPED, crossed_failed_link=False)
        metrics.record_probe(record, PacketFate.DROPPED, crossed_failed_link=False)
        assert metrics.transient_violations == 2
        assert metrics.violations.looped == 1
        assert metrics.violations.dropped == 1
        assert record.violations == 2

    def test_failed_link_crossing_is_not_a_violation(self):
        metrics = ChurnMetrics()
        record = _record()
        metrics.record_probe(record, PacketFate.DROPPED, crossed_failed_link=True)
        assert metrics.failed_link_crossings == 1
        assert metrics.violations.injected == 0
        assert metrics.transient_violations == 0
        assert record.probes == 1 and record.violations == 0


class TestSettlement:
    def test_status_counters(self):
        metrics = ChurnMetrics()
        expected = {
            "done": "completed",
            "cancelled": "cancelled",
            "aborted": "aborted",
            "superseded": "superseded",
            "noop": "noops",
        }
        for index, (status, counter) in enumerate(sorted(expected.items())):
            record = _record(f"r{index}")
            metrics.open_lifecycle(record)
            metrics.settle(record, status, now_ms=10.0 + index)
            assert record.settled
            assert getattr(metrics, counter) == 1
        assert metrics.quiescent
        assert metrics.time_to_quiescence_ms == 14.0

    def test_unknown_status_rejected(self):
        metrics = ChurnMetrics()
        with pytest.raises(KeyError):
            metrics.settle(_record(), "exploded", now_ms=1.0)

    def test_quiescent_false_while_open(self):
        metrics = ChurnMetrics()
        metrics.open_lifecycle(_record())
        assert not metrics.quiescent

    def test_mean_time_to_quiescence(self):
        metrics = ChurnMetrics()
        for index, settle_at in enumerate((3.0, 5.0)):
            record = _record(f"r{index}")
            metrics.open_lifecycle(record)
            metrics.settle(record, "done", now_ms=settle_at)
        assert metrics.mean_time_to_quiescence_ms() == pytest.approx(3.0)


class TestDumps:
    def test_snapshot_tolerates_running_round(self):
        metrics = ChurnMetrics()
        record = _record()
        record.rounds.append(RoundTiming(index=0, started_ms=2.0))
        metrics.open_lifecycle(record)
        snap = metrics.snapshot(now_ms=4.0)
        assert snap["settled"] == 0
        [open_record] = snap["in_flight"]
        [timing] = open_record["rounds"]
        assert timing["running"] is True
        assert timing["duration_ms"] is None
        json.dumps(snap)  # must be serializable mid-run

    def test_to_dict_sorted_and_serializable(self):
        metrics = ChurnMetrics()
        for request_id in ("r2", "r0", "r1"):
            record = _record(request_id)
            metrics.open_lifecycle(record)
            metrics.settle(record, "done", now_ms=2.0)
        dump = metrics.to_dict()
        assert [r["request_id"] for r in dump["lifecycles"]] == ["r0", "r1", "r2"]
        assert dump["quiescent"] is True
        json.dumps(dump)
