"""Tests for churn event types: validation and deterministic ordering."""

import pytest

from repro.churn.events import (
    ChurnError,
    LinkFailure,
    UpdateArrival,
    UpdateCancel,
    event_sort_key,
)


class TestValidation:
    def test_arrival_needs_ids(self):
        with pytest.raises(ChurnError):
            UpdateArrival(time_ms=0.0, request_id="", flow_id="f0",
                          target_path=(1, 2))
        with pytest.raises(ChurnError):
            UpdateArrival(time_ms=0.0, request_id="r0", flow_id="",
                          target_path=(1, 2))

    def test_arrival_needs_real_path(self):
        with pytest.raises(ChurnError):
            UpdateArrival(time_ms=0.0, request_id="r0", flow_id="f0",
                          target_path=(1,))

    def test_cancel_needs_request_id(self):
        with pytest.raises(ChurnError):
            UpdateCancel(time_ms=0.0, request_id="")

    def test_link_failure_needs_distinct_pair(self):
        with pytest.raises(ChurnError):
            LinkFailure(time_ms=0.0, link=(1,))
        with pytest.raises(ChurnError):
            LinkFailure(time_ms=0.0, link=(3, 3))

    def test_link_failure_matches_both_directions(self):
        failure = LinkFailure(time_ms=0.0, link=(1, 2))
        assert failure.matches(1, 2)
        assert failure.matches(2, 1)
        assert not failure.matches(1, 3)


class TestOrdering:
    def test_time_dominates(self):
        early = LinkFailure(time_ms=1.0, link=(1, 2))
        late = UpdateArrival(time_ms=2.0, request_id="r0", flow_id="f0",
                             target_path=(1, 2))
        assert event_sort_key(early) < event_sort_key(late)

    def test_same_instant_kind_rank(self):
        arrival = UpdateArrival(time_ms=5.0, request_id="r0", flow_id="f0",
                                target_path=(1, 2))
        cancel = UpdateCancel(time_ms=5.0, request_id="r0")
        failure = LinkFailure(time_ms=5.0, link=(1, 2))
        ordered = sorted([failure, cancel, arrival], key=event_sort_key)
        assert ordered == [arrival, cancel, failure]

    def test_ties_broken_by_identity(self):
        a = UpdateArrival(time_ms=5.0, request_id="r1", flow_id="f0",
                          target_path=(1, 2))
        b = UpdateArrival(time_ms=5.0, request_id="r10", flow_id="f0",
                          target_path=(1, 2))
        c = UpdateArrival(time_ms=5.0, request_id="r2", flow_id="f0",
                          target_path=(1, 2))
        assert sorted([c, b, a], key=event_sort_key) == [a, b, c]

    def test_unknown_event_rejected(self):
        with pytest.raises(ChurnError):
            event_sort_key(object())
