"""Tests for Match semantics and OXM encoding."""

import pytest

from repro.errors import OpenFlowError
from repro.openflow.match import (
    Match,
    bytes_to_mac,
    format_ipv4_prefix,
    int_to_ip,
    ip_to_int,
    mac_to_bytes,
    parse_ipv4_prefix,
)


class TestValueHelpers:
    def test_ip_roundtrip(self):
        for ip in ("0.0.0.0", "10.0.0.1", "255.255.255.255", "192.168.1.77"):
            assert int_to_ip(ip_to_int(ip)) == ip

    def test_bad_ips(self):
        for bad in ("10.0.0", "10.0.0.256", "a.b.c.d", "1.2.3.4.5"):
            with pytest.raises(OpenFlowError):
                ip_to_int(bad)

    def test_prefix_parsing(self):
        addr, mask = parse_ipv4_prefix("10.0.0.0/8")
        assert addr == 0x0A000000 and mask == 0xFF000000
        addr, mask = parse_ipv4_prefix("10.0.0.1")
        assert mask == 0xFFFFFFFF

    def test_prefix_zero(self):
        addr, mask = parse_ipv4_prefix("0.0.0.0/0")
        assert addr == 0 and mask == 0

    def test_prefix_normalizes_host_bits(self):
        addr, _ = parse_ipv4_prefix("10.0.0.77/24")
        assert addr == ip_to_int("10.0.0.0")

    def test_bad_prefix(self):
        with pytest.raises(OpenFlowError):
            parse_ipv4_prefix("10.0.0.0/33")
        with pytest.raises(OpenFlowError):
            parse_ipv4_prefix("10.0.0.0/x")

    def test_format_prefix(self):
        assert format_ipv4_prefix(ip_to_int("10.0.0.0"), 0xFFFFFF00) == "10.0.0.0/24"
        assert format_ipv4_prefix(ip_to_int("1.2.3.4"), 0xFFFFFFFF) == "1.2.3.4"
        with pytest.raises(OpenFlowError):
            format_ipv4_prefix(0, 0xFF00FF00)

    def test_mac_roundtrip(self):
        mac = "aa:bb:cc:dd:ee:ff"
        assert bytes_to_mac(mac_to_bytes(mac)) == mac
        with pytest.raises(OpenFlowError):
            mac_to_bytes("aa:bb")
        with pytest.raises(OpenFlowError):
            bytes_to_mac(b"\x00")


class TestMatching:
    def test_wildcard_matches_everything(self):
        assert Match().matches({"eth_type": 0x0800})
        assert Match().is_wildcard()

    def test_exact_fields(self):
        match = Match(in_port=3, eth_type=0x0800)
        assert match.matches({"in_port": 3, "eth_type": 0x0800})
        assert not match.matches({"in_port": 4, "eth_type": 0x0800})
        assert not match.matches({"eth_type": 0x0800})

    def test_ipv4_prefix_matching(self):
        match = Match(ipv4_dst="10.1.0.0/16")
        assert match.matches({"ipv4_dst": "10.1.200.3"})
        assert not match.matches({"ipv4_dst": "10.2.0.3"})

    def test_missing_ip_field(self):
        assert not Match(ipv4_dst="10.0.0.1").matches({})

    def test_specificity(self):
        assert Match().specificity() == 0
        assert Match(in_port=1, tcp_dst=80).specificity() == 2

    def test_replace(self):
        match = Match(in_port=1)
        changed = match.replace(in_port=2, eth_type=0x0800)
        assert changed.in_port == 2 and changed.eth_type == 0x0800
        assert match.in_port == 1  # frozen original untouched


class TestSubsumption:
    def test_wildcard_subsumes_all(self):
        assert Match().subsumes(Match(in_port=1, ipv4_dst="10.0.0.1"))

    def test_specific_does_not_subsume_wildcard(self):
        assert not Match(in_port=1).subsumes(Match())

    def test_prefix_subsumption(self):
        assert Match(ipv4_dst="10.0.0.0/8").subsumes(Match(ipv4_dst="10.1.0.0/16"))
        assert not Match(ipv4_dst="10.1.0.0/16").subsumes(Match(ipv4_dst="10.0.0.0/8"))
        assert not Match(ipv4_dst="11.0.0.0/8").subsumes(Match(ipv4_dst="10.1.0.0/16"))

    def test_equal_matches_subsume_each_other(self):
        a = Match(eth_type=0x0800, tcp_dst=80)
        assert a.subsumes(a)


class TestOxmEncoding:
    @pytest.mark.parametrize("match", [
        Match(),
        Match(in_port=7),
        Match(eth_type=0x0800, ipv4_dst="10.0.0.1"),
        Match(eth_type=0x0800, ipv4_src="10.0.0.0/24", ipv4_dst="10.1.0.0/16"),
        Match(eth_src="00:11:22:33:44:55", eth_dst="66:77:88:99:aa:bb"),
        Match(vlan_vid=2),
        Match(ip_proto=6, tcp_src=1234, tcp_dst=80),
        Match(ip_proto=17, udp_src=53, udp_dst=5353),
    ])
    def test_roundtrip(self, match):
        assert Match.from_oxm_bytes(match.to_oxm_bytes()) == match

    def test_truncated_rejected(self):
        data = Match(in_port=1).to_oxm_bytes()
        with pytest.raises(OpenFlowError):
            Match.from_oxm_bytes(data[:-1])

    def test_unknown_class_rejected(self):
        with pytest.raises(OpenFlowError, match="class"):
            Match.from_oxm_bytes(b"\x00\x01\x00\x04\x00\x00\x00\x00")


class TestOfctlCodec:
    def test_roundtrip(self):
        match = Match(in_port=1, eth_type=0x0800, ipv4_dst="10.0.0.0/24")
        assert Match.from_ofctl(match.to_ofctl()) == match

    def test_legacy_aliases(self):
        match = Match.from_ofctl({"nw_dst": "10.0.0.1", "dl_type": 0x0800})
        assert match.ipv4_dst == "10.0.0.1"
        assert match.eth_type == 0x0800

    def test_unknown_field_rejected(self):
        with pytest.raises(OpenFlowError, match="unknown match field"):
            Match.from_ofctl({"frobnicate": 1})
