"""Tests for message classes, FlowMod semantics and the dict codecs."""

import pytest

from repro.errors import OpenFlowError
from repro.openflow.actions import (
    ApplyActions,
    ClearActions,
    GotoTable,
    GroupAction,
    OutputAction,
    PopVlanAction,
    PushVlanAction,
    SetFieldAction,
    WriteActions,
    action_from_dict,
    instruction_from_dict,
    output_instructions,
)
from repro.openflow.constants import FlowModCommand, MsgType, Port
from repro.openflow.flowmod import FlowMod, add_flow, delete_flow
from repro.openflow.json_codec import message_from_dict, message_to_dict
from repro.openflow.match import Match
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoRequest,
    ErrorMsg,
    Hello,
    PacketIn,
    summarize,
)


class TestActions:
    def test_output_dict_roundtrip(self):
        action = OutputAction(port=3)
        assert action_from_dict(action.to_dict()) == action

    def test_output_reserved_port_name(self):
        action = OutputAction(port=int(Port.CONTROLLER))
        data = action.to_dict()
        assert data["port"] == "CONTROLLER"
        assert action_from_dict(data).port == int(Port.CONTROLLER)

    def test_set_field_roundtrip(self):
        action = SetFieldAction(field_name="vlan_vid", value=2)
        assert action_from_dict(action.to_dict()) == action

    def test_set_field_validates_name(self):
        with pytest.raises(OpenFlowError):
            SetFieldAction(field_name="nonsense", value=1)

    def test_vlan_actions_roundtrip(self):
        for action in (PushVlanAction(), PopVlanAction(), GroupAction(group_id=5)):
            assert action_from_dict(action.to_dict()) == action

    def test_unknown_action_rejected(self):
        with pytest.raises(OpenFlowError):
            action_from_dict({"type": "TELEPORT"})

    def test_output_requires_port(self):
        with pytest.raises(OpenFlowError):
            action_from_dict({"type": "OUTPUT"})


class TestInstructions:
    def test_apply_actions_roundtrip(self):
        ins = ApplyActions([OutputAction(port=1), PopVlanAction()])
        assert instruction_from_dict(ins.to_dict()) == ins

    def test_write_clear_goto_roundtrip(self):
        for ins in (WriteActions([OutputAction(port=2)]), ClearActions(), GotoTable(table_id=2)):
            assert instruction_from_dict(ins.to_dict()) == ins

    def test_goto_validates_table(self):
        with pytest.raises(OpenFlowError):
            GotoTable(table_id=400)

    def test_output_instructions_shorthand(self):
        (ins,) = output_instructions(7)
        assert isinstance(ins, ApplyActions)
        assert ins.actions[0].port == 7


class TestFlowMod:
    def test_defaults(self):
        mod = FlowMod()
        assert mod.command is FlowModCommand.ADD
        assert mod.is_add() and not mod.is_delete()

    def test_command_coercion(self):
        mod = FlowMod(command=3)
        assert mod.command is FlowModCommand.DELETE
        assert mod.is_delete() and not mod.is_strict()

    def test_strict_flags(self):
        assert FlowMod(command=FlowModCommand.DELETE_STRICT).is_strict()
        assert FlowMod(command=FlowModCommand.MODIFY_STRICT).is_modify()

    def test_priority_range(self):
        with pytest.raises(OpenFlowError):
            FlowMod(priority=70000)

    def test_output_ports(self):
        mod = add_flow(Match(), out_port=9)
        assert mod.output_ports() == [9]

    def test_with_xid(self):
        mod = add_flow(Match(), out_port=1)
        stamped = mod.with_xid(42)
        assert stamped.xid == 42 and mod.xid == 0

    def test_add_flow_shorthand(self):
        mod = add_flow(Match(in_port=1), out_port=2, priority=7)
        assert mod.priority == 7
        assert mod.match.in_port == 1

    def test_delete_flow_shorthand(self):
        mod = delete_flow(Match(tcp_dst=80), priority=5, strict=True)
        assert mod.command is FlowModCommand.DELETE_STRICT
        assert mod.priority == 5
        with pytest.raises(OpenFlowError):
            delete_flow(Match(), strict=True)

    def test_ofctl_roundtrip(self):
        mod = add_flow(Match(eth_type=0x0800, ipv4_dst="10.0.0.2"), out_port=4)
        back = FlowMod.from_ofctl(mod.to_ofctl())
        assert back.match == mod.match
        assert back.instructions == mod.instructions
        assert back.priority == mod.priority

    def test_ofctl_actions_shorthand(self):
        mod = FlowMod.from_ofctl(
            {"match": {"in_port": 1}, "actions": [{"type": "OUTPUT", "port": 2}]}
        )
        assert mod.output_ports() == [2]

    def test_ofctl_command_field(self):
        mod = FlowMod.from_ofctl({"command": "DELETE", "match": {}})
        assert mod.is_delete()

    def test_bad_command_rejected(self):
        with pytest.raises(OpenFlowError):
            FlowMod.from_ofctl({}, command="EXPLODE")


class TestMessages:
    def test_type_names(self):
        assert Hello().type_name() == "HELLO"
        assert BarrierRequest().msg_type is MsgType.BARRIER_REQUEST
        assert BarrierReply().msg_type is MsgType.BARRIER_REPLY

    def test_error_describe(self):
        err = ErrorMsg(err_type=5, err_code=1)
        assert "FLOW_MOD_FAILED" in err.describe()

    def test_packet_in_total_len(self):
        msg = PacketIn(data=b"abcd")
        assert msg.total_len == 4

    def test_summarize(self):
        assert "BARRIER_REQUEST" in summarize(BarrierRequest(xid=7))
        assert "xid=7" in summarize(BarrierRequest(xid=7))


class TestJsonCodec:
    @pytest.mark.parametrize("message", [
        Hello(xid=1),
        BarrierRequest(xid=2),
        BarrierReply(xid=3),
        EchoRequest(xid=4, data=b"ping"),
        ErrorMsg(xid=5, err_type=5, err_code=1),
        add_flow(Match(ipv4_dst="10.0.0.1"), out_port=2).with_xid(6),
    ])
    def test_roundtrip(self, message):
        data = message_to_dict(message)
        back = message_from_dict(data)
        assert back.xid == message.xid
        assert back.msg_type == message.msg_type

    def test_flowmod_content_survives(self):
        mod = add_flow(Match(tcp_dst=80, eth_type=0x0800), out_port=3, priority=9)
        back = message_from_dict(message_to_dict(mod))
        assert back.match == mod.match
        assert back.priority == 9

    def test_unknown_type_rejected(self):
        with pytest.raises(OpenFlowError):
            message_from_dict({"type": "WARP_DRIVE"})
