"""Tests for the binary wire codec, including hypothesis round-trips."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WireFormatError
from repro.openflow.actions import (
    OutputAction,
    PopVlanAction,
    PushVlanAction,
    SetFieldAction,
)
from repro.openflow.constants import (
    OFP_HEADER_LEN,
    OFP_VERSION,
    FlowModCommand,
    MsgType,
)
from repro.openflow.flowmod import FlowMod, add_flow
from repro.openflow.match import Match
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMsg,
    FeaturesReply,
    FeaturesRequest,
    FlowRemoved,
    Hello,
    PacketIn,
    PacketOut,
)
from repro.openflow.stats import FlowStatsEntry, FlowStatsReply, FlowStatsRequest
from repro.openflow.wire import decode, decode_stream, encode


class TestHeader:
    def test_header_layout(self):
        frame = encode(BarrierRequest(xid=0x12345678))
        version, msg_type, length, xid = struct.unpack("!BBHI", frame[:8])
        assert version == OFP_VERSION
        assert msg_type == MsgType.BARRIER_REQUEST
        assert length == len(frame) == OFP_HEADER_LEN
        assert xid == 0x12345678

    def test_flowmod_type_byte(self):
        frame = encode(add_flow(Match(), out_port=1))
        assert frame[1] == MsgType.FLOW_MOD == 14

    def test_bad_version_rejected(self):
        frame = bytearray(encode(Hello()))
        frame[0] = 0x01
        with pytest.raises(WireFormatError, match="version"):
            decode(bytes(frame))

    def test_length_mismatch_rejected(self):
        frame = encode(Hello()) + b"\x00"
        with pytest.raises(WireFormatError, match="length"):
            decode(frame)

    def test_short_frame_rejected(self):
        with pytest.raises(WireFormatError):
            decode(b"\x04\x00")

    def test_unknown_type_rejected(self):
        frame = bytearray(encode(Hello()))
        frame[1] = 99
        with pytest.raises(WireFormatError, match="unknown message type"):
            decode(bytes(frame))


class TestRoundTrips:
    @pytest.mark.parametrize("message", [
        Hello(xid=1),
        EchoRequest(xid=2, data=b"x" * 17),
        EchoReply(xid=2, data=b""),
        FeaturesRequest(xid=3),
        FeaturesReply(xid=4, datapath_id=0xDEADBEEF, n_tables=8),
        BarrierRequest(xid=5),
        BarrierReply(xid=5),
        ErrorMsg(xid=6, err_type=5, err_code=3, data=b"ctx"),
        FlowMod(
            xid=7,
            command=FlowModCommand.DELETE_STRICT,
            priority=0x7FFF,
            cookie=0xABCDEF,
            match=Match(eth_type=0x0800, ipv4_dst="10.0.0.0/24"),
        ),
        add_flow(Match(vlan_vid=2, in_port=3), out_port=9).with_xid(8),
        PacketIn(xid=9, match=Match(in_port=1), data=b"\x01\x02"),
        PacketOut(
            xid=10,
            in_port=2,
            actions=(
                PushVlanAction(),
                SetFieldAction("vlan_vid", 2),
                OutputAction(port=4),
                PopVlanAction(),
            ),
            data=b"payload",
        ),
        FlowRemoved(xid=11, cookie=1, priority=2, packet_count=99,
                    match=Match(tcp_dst=80, eth_type=0x0800, ip_proto=6)),
        FlowStatsRequest(xid=12, table_id=0xFF),
        FlowStatsReply(
            xid=13,
            entries=(
                FlowStatsEntry(priority=1, match=Match(in_port=1)),
                FlowStatsEntry(
                    priority=2,
                    packet_count=7,
                    match=Match(ipv4_src="1.2.3.0/24"),
                    instructions=(add_flow(Match(), out_port=1).instructions),
                ),
            ),
        ),
    ])
    def test_identity(self, message):
        assert decode(encode(message)) == message

    def test_frames_are_8_byte_sane(self):
        frame = encode(add_flow(Match(ipv4_dst="10.0.0.1"), out_port=1))
        # FlowMod body: 40 fixed + match (padded to 8) + instructions (16)
        assert (len(frame) - 8 - 40 - 16) % 8 == 0


class TestStream:
    def test_multiple_frames(self):
        messages = [Hello(xid=1), BarrierRequest(xid=2), BarrierReply(xid=2)]
        stream = b"".join(encode(m) for m in messages)
        assert list(decode_stream(stream)) == messages

    def test_truncated_stream_rejected(self):
        stream = encode(Hello()) + b"\x04\x00"
        with pytest.raises(WireFormatError):
            list(decode_stream(stream))


@st.composite
def matches(draw):
    kwargs = {}
    if draw(st.booleans()):
        kwargs["in_port"] = draw(st.integers(min_value=1, max_value=2**32 - 1))
    if draw(st.booleans()):
        kwargs["eth_type"] = draw(st.integers(min_value=0, max_value=0xFFFF))
    if draw(st.booleans()):
        octets = draw(st.lists(st.integers(0, 255), min_size=4, max_size=4))
        prefix = draw(st.integers(min_value=0, max_value=32))
        kwargs["ipv4_dst"] = ".".join(map(str, octets)) + f"/{prefix}"
    if draw(st.booleans()):
        kwargs["vlan_vid"] = draw(st.integers(min_value=0, max_value=0xFFF))
    if draw(st.booleans()):
        kwargs["tcp_dst"] = draw(st.integers(min_value=0, max_value=0xFFFF))
    return Match(**kwargs)


class TestPropertyRoundTrips:
    @settings(max_examples=100, deadline=None)
    @given(matches())
    def test_match_oxm_roundtrip(self, match):
        decoded = Match.from_oxm_bytes(match.to_oxm_bytes())
        # masked IPv4 normalizes host bits; compare via semantics
        assert decoded.to_oxm_bytes() == decoded.to_oxm_bytes()
        for name, value in decoded.set_fields().items():
            assert getattr(match, name) is not None

    @settings(max_examples=100, deadline=None)
    @given(
        matches(),
        st.integers(min_value=0, max_value=0xFFFF),
        st.integers(min_value=1, max_value=2**32 - 1),
        st.sampled_from(list(FlowModCommand)),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_flowmod_wire_roundtrip(self, match, priority, port, command, xid):
        mod = FlowMod(
            xid=xid,
            command=command,
            priority=priority,
            match=match,
            instructions=add_flow(Match(), out_port=port).instructions,
        )
        # normalize: the encoder writes the *normalized* ipv4 prefix, so
        # compare against a re-decoded reference
        reference = decode(encode(mod))
        assert decode(encode(reference)) == reference

    @settings(max_examples=60, deadline=None)
    @given(st.binary(max_size=64), st.integers(min_value=0, max_value=2**32 - 1))
    def test_echo_roundtrip(self, payload, xid):
        message = EchoRequest(xid=xid, data=payload)
        assert decode(encode(message)) == message
