"""Tests for latency models and control channels."""

import random

import pytest

from repro.channel.base import ControlChannel, fifo_channel, reordering_channel
from repro.channel.latency_models import (
    Constant,
    Exponential,
    LogNormal,
    Pareto,
    Uniform,
    from_spec,
)
from repro.errors import ChannelClosedError, ChannelError
from repro.sim.simulator import Simulator


class TestLatencyModels:
    def test_constant(self):
        rng = random.Random(0)
        model = Constant(2.5)
        assert model.sample(rng) == 2.5
        assert model.mean() == 2.5

    def test_constant_rejects_negative(self):
        with pytest.raises(ChannelError):
            Constant(-1.0)

    def test_uniform_bounds(self):
        rng = random.Random(0)
        model = Uniform(1.0, 5.0)
        samples = [model.sample(rng) for _ in range(200)]
        assert all(1.0 <= s <= 5.0 for s in samples)
        assert model.mean() == 3.0

    def test_uniform_rejects_bad_range(self):
        with pytest.raises(ChannelError):
            Uniform(5.0, 1.0)

    def test_exponential_floor(self):
        rng = random.Random(0)
        model = Exponential(mean_ms=2.0, floor=1.0)
        assert all(model.sample(rng) >= 1.0 for _ in range(100))
        assert model.mean() == 3.0

    def test_lognormal_positive(self):
        rng = random.Random(0)
        model = LogNormal(median=3.0, sigma=0.5)
        assert all(model.sample(rng) > 0 for _ in range(100))
        assert model.mean() > 3.0  # lognormal mean exceeds median

    def test_pareto_capped(self):
        rng = random.Random(0)
        model = Pareto(scale=1.0, alpha=1.1, cap=50.0)
        assert all(model.sample(rng) <= 50.0 for _ in range(500))

    def test_empirical_mean_close(self):
        rng = random.Random(7)
        model = Uniform(2.0, 4.0)
        samples = [model.sample(rng) for _ in range(5000)]
        assert abs(sum(samples) / len(samples) - model.mean()) < 0.1

    @pytest.mark.parametrize("spec,expected_type", [
        (2.0, Constant),
        ("3.5", Constant),
        ("const:2", Constant),
        ("uniform:1:5", Uniform),
        ("exp:3", Exponential),
        ("lognormal:2:0.4", LogNormal),
        ("pareto:1:2:100", Pareto),
    ])
    def test_from_spec(self, spec, expected_type):
        assert isinstance(from_spec(spec), expected_type)

    def test_from_spec_passthrough(self):
        model = Constant(1.0)
        assert from_spec(model) is model

    def test_from_spec_rejects_unknown(self):
        with pytest.raises(ChannelError):
            from_spec("warp:9")
        with pytest.raises(ChannelError):
            from_spec("uniform:1:2:3:4")


class TestControlChannel:
    def _channel(self, **kwargs) -> tuple[Simulator, ControlChannel, list, list]:
        sim = Simulator()
        channel = ControlChannel(sim, rng=random.Random(0), **kwargs)
        at_switch, at_controller = [], []
        channel.bind_switch(at_switch.append)
        channel.bind_controller(at_controller.append)
        return sim, channel, at_switch, at_controller

    def test_delivery_both_directions(self):
        sim, channel, at_switch, at_controller = self._channel(latency=2.0)
        channel.to_switch("down")
        channel.to_controller("up")
        sim.run()
        assert at_switch == ["down"]
        assert at_controller == ["up"]
        assert sim.now == 2.0

    def test_fifo_preserves_order(self):
        sim, channel, at_switch, _ = self._channel(
            latency=Uniform(0.1, 10.0), fifo=True
        )
        for index in range(50):
            channel.to_switch(index)
        sim.run()
        assert at_switch == list(range(50))

    def test_reordering_channel_can_reorder(self):
        sim, channel, at_switch, _ = self._channel(
            latency=Uniform(0.1, 10.0), fifo=False
        )
        for index in range(50):
            channel.to_switch(index)
        sim.run()
        assert sorted(at_switch) == list(range(50))
        assert at_switch != list(range(50))  # seed 0 does reorder

    def test_directions_independent_fifo(self):
        sim, channel, at_switch, at_controller = self._channel(latency=1.0)
        channel.to_switch("a")
        channel.to_controller("b")
        sim.run()
        assert at_switch and at_controller

    def test_loss_inflates_latency(self):
        sim, channel, at_switch, _ = self._channel(
            latency=1.0, drop_prob=0.9, rto_ms=100.0
        )
        channel.to_switch("x")
        sim.run()
        assert at_switch == ["x"]
        assert sim.now > 100.0  # at least one retransmission happened
        assert channel.stats.retransmissions >= 1

    def test_closed_channel_rejects(self):
        _, channel, _, _ = self._channel()
        channel.close()
        with pytest.raises(ChannelClosedError):
            channel.to_switch("x")

    def test_unbound_handler_raises(self):
        sim = Simulator()
        channel = ControlChannel(sim)
        channel.to_switch("x")
        with pytest.raises(ChannelError, match="handler"):
            sim.run()

    def test_stats(self):
        sim, channel, _, _ = self._channel(latency=1.0)
        channel.to_switch("a")
        channel.to_switch("b")
        channel.to_controller("c")
        sim.run()
        assert channel.stats.to_switch_sent == 2
        assert channel.stats.to_switch_delivered == 2
        assert channel.stats.to_controller_delivered == 1
        assert channel.stats.mean_latency_ms() == pytest.approx(1.0)

    def test_bad_drop_prob(self):
        with pytest.raises(ChannelError):
            ControlChannel(Simulator(), drop_prob=1.0)

    def test_helper_constructors(self):
        sim = Simulator()
        assert fifo_channel(sim).fifo is True
        assert reordering_channel(sim).fifo is False
