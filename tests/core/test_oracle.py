"""Equivalence tests: the incremental SafetyOracle vs the from-scratch verifiers.

Every verdict the delta-maintained oracle produces must be bit-identical
to the reference implementation that rebuilds the union graph per query
(:func:`round_is_safe_reference` and the ``check_*`` verifiers).  The
randomized suites drive both through random instances, random round
splits and random apply/commit/revert walks.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.hardness import (
    crossing_instance,
    double_diamond_instance,
    reversal_instance,
    sawtooth_instance,
    waypoint_slalom_instance,
)
from repro.core.optimal import (
    minimal_round_schedule,
    round_is_safe,
    round_is_safe_reference,
)
from repro.core.oracle import SafetyOracle, aggregate_stats, oracle_for
from repro.core.problem import UpdateProblem
from repro.core.verify import Property
from repro.core.wayup import wayup_schedule
from repro.errors import InfeasibleUpdateError, VerificationError
from repro.metrics import MetricsCollector
from repro.topology.random_graphs import random_update_instance

_RELAXED = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

ALL_PROPERTY_SETS = [
    (Property.SLF,),
    (Property.RLF,),
    (Property.BLACKHOLE,),
    (Property.SLF, Property.BLACKHOLE),
    (Property.RLF, Property.BLACKHOLE),
]
WAYPOINT_PROPERTY_SETS = ALL_PROPERTY_SETS + [
    (Property.WPE,),
    (Property.WPE, Property.BLACKHOLE),
    (Property.WPE, Property.SLF),
    (Property.WPE, Property.RLF),
]


@st.composite
def instances(draw, with_waypoint: bool = False):
    n = draw(st.integers(min_value=4, max_value=9))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    overlap = draw(st.floats(min_value=0.0, max_value=1.0))
    old, new, waypoint = random_update_instance(
        n, seed=seed, overlap=overlap, with_waypoint=with_waypoint
    )
    return UpdateProblem(old, new, waypoint=waypoint if with_waypoint else None)


def _random_round_queries(problem, rng, count=12):
    """Random ``(updated, round_nodes)`` pairs over the problem's updates."""
    pool = sorted(problem.all_updates, key=repr)
    queries = []
    for _ in range(count):
        if not pool:
            break
        k = rng.randint(0, len(pool))
        updated = set(rng.sample(pool, k))
        rest = [n for n in pool if n not in updated]
        if not rest:
            continue
        round_nodes = set(rng.sample(rest, rng.randint(1, len(rest))))
        queries.append((updated, round_nodes))
    return queries


class TestVerdictEquivalence:
    @_RELAXED
    @given(instances(), st.integers(min_value=0, max_value=2**32 - 1))
    def test_matches_reference_on_random_queries(self, problem, seed):
        rng = random.Random(seed)
        for properties in ALL_PROPERTY_SETS:
            oracle = SafetyOracle(problem, properties)
            for updated, round_nodes in _random_round_queries(problem, rng):
                expected = round_is_safe_reference(
                    problem, set(updated), set(round_nodes), properties
                )
                got = oracle.round_is_safe(updated, round_nodes)
                assert got == expected, (
                    properties, problem.old_path, problem.new_path,
                    updated, round_nodes,
                )

    @_RELAXED
    @given(
        instances(with_waypoint=True),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_matches_reference_with_waypoint(self, problem, seed):
        rng = random.Random(seed)
        for properties in WAYPOINT_PROPERTY_SETS:
            oracle = SafetyOracle(problem, properties)
            for updated, round_nodes in _random_round_queries(problem, rng):
                expected = round_is_safe_reference(
                    problem, set(updated), set(round_nodes), properties
                )
                got = oracle.round_is_safe(updated, round_nodes)
                assert got == expected, (
                    properties, problem.old_path, problem.new_path,
                    updated, round_nodes,
                )

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: reversal_instance(8),
            lambda: sawtooth_instance(10, 4),
            crossing_instance,
            double_diamond_instance,
            lambda: waypoint_slalom_instance(3),
        ],
    )
    def test_matches_reference_on_hardness_families(self, factory):
        problem = factory()
        rng = random.Random(1234)
        sets = (
            WAYPOINT_PROPERTY_SETS
            if problem.waypoint is not None
            else ALL_PROPERTY_SETS
        )
        for properties in sets:
            oracle = SafetyOracle(problem, properties)
            for updated, round_nodes in _random_round_queries(problem, rng, 20):
                expected = round_is_safe_reference(
                    problem, set(updated), set(round_nodes), properties
                )
                assert oracle.round_is_safe(updated, round_nodes) == expected


class TestDeltaWalkEquivalence:
    """apply/commit/revert walks must track the from-scratch verdicts."""

    @_RELAXED
    @given(instances(), st.integers(min_value=0, max_value=2**32 - 1))
    def test_random_walk_matches_reference(self, problem, seed):
        rng = random.Random(seed)
        pool = sorted(problem.all_updates, key=repr)
        if not pool:
            return
        for properties in ((Property.SLF,), (Property.RLF, Property.BLACKHOLE)):
            oracle = SafetyOracle(problem, properties)
            updated: set = set()
            flex: set = set()
            for _ in range(30):
                op = rng.random()
                if op < 0.5 and (set(pool) - updated - flex):
                    node = rng.choice(sorted(set(pool) - updated - flex, key=repr))
                    oracle.apply(node)
                    flex.add(node)
                elif op < 0.75 and flex:
                    node = rng.choice(sorted(flex, key=repr))
                    oracle.commit(node)
                    flex.discard(node)
                    updated.add(node)
                elif flex:
                    node = rng.choice(sorted(flex, key=repr))
                    oracle.revert(node)
                    flex.discard(node)
                else:
                    continue
                expected = round_is_safe_reference(
                    problem, set(updated), set(flex), properties
                )
                assert oracle.current_round_safe() == expected, (
                    properties, problem.old_path, problem.new_path,
                    updated, flex,
                )
                assert oracle.updated_nodes() == frozenset(updated)
                assert oracle.in_flight_nodes() == frozenset(flex)

    def test_try_apply_reverts_on_unsafe(self):
        problem = reversal_instance(6)
        oracle = SafetyOracle(problem, (Property.SLF,))
        oracle.reset()
        # flipping an interior backward node alone closes a 2-cycle
        assert not oracle.try_apply(3)
        assert oracle.in_flight_nodes() == frozenset()
        assert oracle.current_round_safe()


class TestExactSearchEquivalence:
    @_RELAXED
    @given(instances(), st.integers(min_value=0, max_value=2**32 - 1))
    def test_minimal_rounds_match_reference_path(self, problem, seed):
        del seed
        if not problem.required_updates or len(problem.required_updates) > 7:
            return
        for properties in ((Property.RLF,), (Property.SLF,)):
            try:
                fast = minimal_round_schedule(
                    problem, properties, use_oracle=True
                ).n_rounds
            except InfeasibleUpdateError:
                with pytest.raises(InfeasibleUpdateError):
                    minimal_round_schedule(problem, properties, use_oracle=False)
                continue
            slow = minimal_round_schedule(
                problem, properties, use_oracle=False
            ).n_rounds
            assert fast == slow

    def test_crossing_infeasibility_matches(self):
        problem = crossing_instance()
        for use_oracle in (True, False):
            with pytest.raises(InfeasibleUpdateError):
                minimal_round_schedule(
                    problem, (Property.WPE, Property.SLF), use_oracle=use_oracle
                )


class TestMemoAndRegistry:
    def test_memo_hits_count(self):
        problem = reversal_instance(6)
        oracle = SafetyOracle(problem, (Property.SLF,))
        assert oracle.round_is_safe(set(), {2}) == oracle.round_is_safe(set(), {2})
        assert oracle.stats.memo_misses == 1
        assert oracle.stats.memo_hits == 1
        assert oracle.memo_size() == 1
        oracle.clear_memo()
        assert oracle.memo_size() == 0

    def test_shared_oracle_reuses_memo_across_call_sites(self):
        problem = reversal_instance(6)
        first = oracle_for(problem, (Property.RLF,))
        baseline = first.stats.memo_misses
        round_is_safe(problem, set(), {2}, (Property.RLF,))
        round_is_safe(problem, set(), {2}, (Property.RLF,))
        assert oracle_for(problem, (Property.RLF,)) is first
        assert first.stats.memo_misses == baseline + 1
        assert first.stats.memo_hits >= 1

    def test_distinct_modes_get_distinct_oracles(self):
        problem = reversal_instance(6)
        exact = oracle_for(problem, (Property.RLF,), exact_rlf=True)
        conservative = oracle_for(problem, (Property.RLF,), exact_rlf=False)
        assert exact is not conservative

    def test_property_order_shares_one_oracle(self):
        problem = reversal_instance(6)
        forward = oracle_for(problem, (Property.SLF, Property.BLACKHOLE))
        backward = oracle_for(problem, (Property.BLACKHOLE, Property.SLF))
        assert forward is backward

    def test_oracles_die_with_their_problem(self):
        import gc
        import weakref

        problem = reversal_instance(6)
        oracle = oracle_for(problem, (Property.SLF,))
        grave = weakref.ref(oracle)
        del oracle, problem
        gc.collect()
        assert grave() is None

    def test_memo_limit_eviction(self):
        problem = reversal_instance(6)
        oracle = SafetyOracle(problem, (Property.SLF,), memo_limit=2)
        for node in (2, 3, 4):
            oracle.round_is_safe(set(), {node})
        assert oracle.stats.memo_evictions >= 1
        assert oracle.memo_size() <= 2

    def test_publish_records_counters(self):
        problem = reversal_instance(6)
        oracle = SafetyOracle(problem, (Property.SLF,))
        oracle.round_is_safe(set(), {2})
        collector = MetricsCollector()
        oracle.publish(collector)
        assert collector.get("oracle.memo_misses") == [1.0]

    def test_aggregate_stats_sums_registered_oracles(self):
        problem = reversal_instance(6)
        oracle = oracle_for(problem, (Property.SLF,))
        before = aggregate_stats().memo_misses
        oracle.round_is_safe(set(), {problem.old_path.nodes[1]})
        assert aggregate_stats().memo_misses >= before

    def test_rejects_empty_properties_and_waypointless_wpe(self):
        problem = reversal_instance(6)
        with pytest.raises(VerificationError):
            SafetyOracle(problem, ())
        with pytest.raises(VerificationError):
            SafetyOracle(problem, (Property.WPE,))

    def test_schedulers_reject_mismatched_oracle(self):
        from repro.core.greedy_slf import greedy_slf_schedule

        problem = reversal_instance(6)
        other = reversal_instance(7)
        with pytest.raises(VerificationError):
            greedy_slf_schedule(problem, oracle=oracle_for(other, (Property.SLF,)))
        with pytest.raises(VerificationError):
            greedy_slf_schedule(problem, oracle=oracle_for(problem, (Property.RLF,)))
        with pytest.raises(VerificationError):
            round_is_safe(
                problem,
                set(),
                {2},
                (Property.SLF,),
                oracle=oracle_for(problem, (Property.RLF,)),
            )


class TestFrontiers:
    def test_forward_and_backward_frontiers_track_old_path(self):
        problem = reversal_instance(6)
        oracle = SafetyOracle(problem, (Property.SLF,))
        oracle.reset()
        assert oracle.forward_frontier() == frozenset(problem.old_path.nodes)
        assert oracle.backward_frontier() == frozenset(problem.old_path.nodes)
        assert oracle.reaches_destination(problem.source)

    def test_frontier_extends_incrementally_on_apply(self):
        problem = UpdateProblem([1, 2, 3], [1, 4, 3])
        oracle = SafetyOracle(problem, (Property.BLACKHOLE,))
        oracle.reset()
        assert 4 not in oracle.forward_frontier()
        oracle.apply(1)  # the source may now jump to the fresh node
        assert 4 in oracle.forward_frontier()
        assert oracle.stats.frontier_extensions >= 1


class TestWayUpOracleCheck:
    def test_check_rounds_accepts_wayup_schedules(self):
        for factory in (
            crossing_instance,
            double_diamond_instance,
            lambda: waypoint_slalom_instance(4),
        ):
            schedule = wayup_schedule(factory(), check_rounds=True)
            assert schedule.n_rounds >= 1

    @_RELAXED
    @given(instances(with_waypoint=True))
    def test_check_rounds_accepts_random_waypointed_instances(self, problem):
        from repro.errors import UpdateModelError

        try:
            checked = wayup_schedule(problem, check_rounds=True)
        except UpdateModelError as exc:
            assert "no rule changes" in str(exc)
            return
        plain = wayup_schedule(problem)
        assert checked.rounds == plain.rounds
