"""Tests for update dependency analysis and schedule explanations."""

import pytest

from repro.core.analysis import (
    cannot_be_last,
    dependency_graph,
    explain_schedule,
    greedy_deadlock_certificate,
    is_order_forced,
    unlock_constraints,
    unsafe_alone,
)
from repro.core.hardness import crossing_instance, double_diamond_instance
from repro.core.problem import UpdateProblem
from repro.core.verify import Property
from repro.core.wayup import wayup_schedule


class TestUnsafeAlone:
    def test_crossing_wpe(self):
        # 2 first sends pre-waypoint packets straight to d; 1 first routes
        # onto the not-yet-ready new path whose old rules skip the waypoint
        blocked = unsafe_alone(crossing_instance(), (Property.WPE,))
        assert blocked == {1, 2}
        # the early mover (4) and the waypoint (3) are safe openers
        assert 3 not in blocked and 4 not in blocked

    def test_blackhole_blocks_switch_before_install(self):
        problem = UpdateProblem([1, 2, 3], [1, 4, 3])
        assert unsafe_alone(problem, (Property.BLACKHOLE,)) == {1}

    def test_safe_problem_has_none(self):
        problem = UpdateProblem([1, 2, 3, 4], [1, 3, 4])  # pure forward
        assert unsafe_alone(problem, (Property.SLF,)) == set()


class TestUnlocks:
    def test_install_unlocks_switch(self):
        problem = UpdateProblem([1, 2, 3], [1, 4, 3])
        assert (4, 1) in unlock_constraints(problem, (Property.BLACKHOLE,))

    def test_multi_predecessor_nodes_have_no_unlock_pair(self):
        # node 2 of the crossing needs BOTH 1 and 4 done: no single unlock
        constraints = unlock_constraints(crossing_instance(), (Property.WPE,))
        assert all(u != 2 for _, u in constraints)


class TestForcedOrders:
    def test_crossing_forced_chain(self):
        """WPE forces early-mover -> source -> late-mover, exactly."""
        problem = crossing_instance()
        assert is_order_forced(problem, 4, 1, (Property.WPE,))
        assert is_order_forced(problem, 1, 2, (Property.WPE,))
        assert is_order_forced(problem, 4, 2, (Property.WPE,))  # transitive

    def test_unforced_pairs(self):
        problem = crossing_instance()
        # the waypoint and the early mover can share a round: no order
        assert not is_order_forced(problem, 4, 3, (Property.WPE,))
        assert not is_order_forced(problem, 3, 4, (Property.WPE,))
        # reverse of a forced pair is of course not forced
        assert not is_order_forced(problem, 2, 1, (Property.WPE,))

    def test_self_and_unknown(self):
        problem = crossing_instance()
        assert not is_order_forced(problem, 1, 1, (Property.WPE,))
        with pytest.raises(ValueError):
            is_order_forced(problem, 99, 1, (Property.WPE,))

    def test_infeasible_instances_force_nothing(self):
        problem = crossing_instance()
        assert not is_order_forced(problem, 4, 1, (Property.WPE, Property.SLF))

    def test_dependency_graph_respected_by_wayup(self):
        problem = crossing_instance()
        schedule = wayup_schedule(problem, include_cleanup=False)
        graph = dependency_graph(problem, (Property.WPE,))
        assert set(graph.edges) == {(4, 1), (1, 2), (4, 2)}
        for before, after in graph.edges:
            assert schedule.round_of(before) < schedule.round_of(after)

    def test_dependency_graph_acyclic_on_feasible(self):
        import networkx as nx

        graph = dependency_graph(crossing_instance(), (Property.WPE,))
        assert nx.is_directed_acyclic_graph(graph)


class TestInfeasibilityCertificates:
    def test_crossing_wpe_slf_deadlocks_immediately(self):
        certificate = greedy_deadlock_certificate(
            crossing_instance(), (Property.WPE, Property.SLF)
        )
        assert certificate == set(crossing_instance().required_updates)

    def test_wpe_alone_can_start(self):
        assert greedy_deadlock_certificate(
            crossing_instance(), (Property.WPE,)
        ) is None

    def test_diamond_full_combination_can_start(self):
        assert greedy_deadlock_certificate(
            double_diamond_instance(),
            (Property.WPE, Property.SLF, Property.BLACKHOLE),
        ) is None

    def test_cannot_be_last_under_wpe(self):
        # flipping the old-prefix source last means the late mover went
        # earlier -- which already bypassed the waypoint; 1 can't be last
        last_blocked = cannot_be_last(crossing_instance(), (Property.WPE,))
        assert 1 in last_blocked
        assert 2 not in last_blocked  # the late mover is the natural finisher


class TestExplain:
    def test_narrative_lines(self):
        schedule = wayup_schedule(crossing_instance())
        lines = explain_schedule(schedule)
        assert len(lines) == schedule.n_rounds
        assert lines[0].startswith("round 0 [post-waypoint]")
        assert any("becomes" in line for line in lines)

    def test_mentions_installs_and_deletes(self):
        problem = UpdateProblem([1, 2, 3], [1, 4, 3])
        from repro.core.peacock import peacock_schedule

        lines = explain_schedule(peacock_schedule(problem))
        text = "\n".join(lines)
        assert "install" in text
        assert "delete stale rule" in text
