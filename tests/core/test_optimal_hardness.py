"""Tests for exact minimum-round search and the adversarial families."""

import pytest

from repro.core.greedy_slf import greedy_slf_schedule
from repro.core.hardness import (
    crossing_instance,
    double_diamond_instance,
    reversal_instance,
    sawtooth_instance,
    waypoint_slalom_instance,
)
from repro.core.optimal import (
    is_feasible,
    minimal_round_count,
    minimal_round_schedule,
    round_is_safe,
)
from repro.core.peacock import peacock_schedule
from repro.core.problem import UpdateProblem
from repro.core.verify import Property, verify_schedule
from repro.core.wayup import wayup_schedule
from repro.errors import InfeasibleUpdateError, UpdateModelError, VerificationError


class TestOptimal:
    def test_found_schedule_is_valid_and_safe(self):
        problem = reversal_instance(6)
        schedule = minimal_round_schedule(problem, (Property.RLF,))
        report = verify_schedule(schedule, properties=(Property.RLF,))
        assert report.ok
        assert schedule.scheduled_nodes() == problem.required_updates

    def test_optimal_at_most_greedy(self):
        problem = reversal_instance(7)
        best = minimal_round_count(problem, (Property.RLF,))
        greedy = peacock_schedule(problem, include_cleanup=False).n_rounds
        assert best <= greedy

    def test_slf_optimal_matches_lower_bound(self):
        # strong loop freedom on the reversal is forced: n-2 rounds
        problem = reversal_instance(6)
        assert minimal_round_count(problem, (Property.SLF,)) == 4

    def test_rlf_optimal_is_constant_on_reversal(self):
        problem = reversal_instance(7)
        assert minimal_round_count(problem, (Property.RLF,)) <= 3

    def test_crossing_wpe_needs_three_rounds(self):
        problem = crossing_instance()
        assert minimal_round_count(problem, (Property.WPE,)) == 3

    def test_crossing_wpe_plus_loopfreedom_infeasible(self):
        """The celebrated impossibility: WPE and loop freedom can clash."""
        problem = crossing_instance()
        assert not is_feasible(problem, (Property.WPE, Property.SLF))
        assert not is_feasible(problem, (Property.WPE, Property.RLF))

    def test_diamond_wpe_plus_slf_feasible(self):
        problem = double_diamond_instance()
        schedule = minimal_round_schedule(
            problem, (Property.WPE, Property.SLF, Property.BLACKHOLE)
        )
        report = verify_schedule(
            schedule, properties=(Property.WPE, Property.SLF, Property.BLACKHOLE)
        )
        assert report.ok

    def test_max_rounds_cutoff(self):
        problem = reversal_instance(6)
        with pytest.raises(InfeasibleUpdateError):
            minimal_round_schedule(problem, (Property.SLF,), max_rounds=2)

    def test_node_budget_enforced(self):
        problem = reversal_instance(20)
        with pytest.raises(VerificationError, match="capped"):
            minimal_round_schedule(problem, (Property.RLF,), max_nodes=5)

    def test_nothing_to_schedule_is_a_noop(self):
        # regression: a no-op instance used to raise InfeasibleUpdateError,
        # making is_feasible wrongly report it as infeasible
        problem = UpdateProblem([1, 2, 3], [1, 2, 3])
        schedule = minimal_round_schedule(problem, (Property.RLF,))
        assert schedule.n_rounds == 0
        assert schedule.scheduled_nodes() == frozenset()
        assert minimal_round_count(problem, (Property.RLF,)) == 0
        assert is_feasible(problem, (Property.RLF,))

    def test_round_is_safe_helper(self):
        problem = crossing_instance()
        assert round_is_safe(problem, set(), {4}, (Property.WPE,))
        assert not round_is_safe(problem, set(), {2}, (Property.WPE,))


class TestHardnessFamilies:
    def test_reversal_validation(self):
        with pytest.raises(UpdateModelError):
            reversal_instance(3)
        problem = reversal_instance(5)
        assert problem.old_path.nodes == (1, 2, 3, 4, 5)
        assert problem.new_path.nodes == (1, 4, 3, 2, 5)

    def test_sawtooth_block_one_is_noop(self):
        problem = sawtooth_instance(6, block=1)
        assert problem.old_path == problem.new_path

    def test_sawtooth_full_block_is_reversal(self):
        problem = sawtooth_instance(6, block=4)
        assert problem.new_path == reversal_instance(6).new_path

    def test_sawtooth_validation(self):
        with pytest.raises(UpdateModelError):
            sawtooth_instance(6, block=0)

    def test_slalom_classes(self):
        problem = waypoint_slalom_instance(2)
        classes = problem.waypoint_classes
        # a-nodes sit on the old prefix and new suffix (late movers)
        assert {1, 2} <= classes.old_pre and {1, 2} <= classes.new_suf
        # b-nodes sit on the old suffix and new prefix (early movers)
        assert {3, 4} <= classes.old_suf and {3, 4} <= classes.new_pre

    def test_slalom_wayup_safe_at_scale(self):
        schedule = wayup_schedule(waypoint_slalom_instance(6))
        assert verify_schedule(schedule, properties=(Property.WPE,)).ok

    def test_families_feed_all_schedulers(self):
        problem = sawtooth_instance(9, block=3)
        for factory in (peacock_schedule, greedy_slf_schedule):
            schedule = factory(problem)
            assert schedule.scheduled_nodes() >= problem.required_updates
