"""Tests for the analytic update-time model."""

import pytest

from repro.core.cost import (
    HARDWARE_TCAM,
    OVS_FAST,
    PRESETS,
    CostModel,
    round_time_breakdown,
    schedule_update_time,
    two_phase_update_time,
)
from repro.core.oneshot import oneshot_schedule
from repro.core.twophase import two_phase_schedule
from repro.core.wayup import wayup_schedule
from repro.netlab.figure1 import figure1_problem


class TestCostModel:
    def test_round_time_components(self):
        cost = CostModel(rtt_ms=2.0, install_ms=0.5, barrier_ms=0.1)
        assert cost.round_time([1, 2, 3]) == pytest.approx(2.0 + 0.5 + 0.1)

    def test_empty_round_is_rtt_only(self):
        cost = CostModel(rtt_ms=2.0, install_ms=0.5, barrier_ms=0.1)
        assert cost.round_time([]) == pytest.approx(2.1)

    def test_per_switch_override(self):
        cost = CostModel(install_ms=0.5, per_switch_install_ms={7: 30.0})
        assert cost.install_time(7) == 30.0
        assert cost.install_time(1) == 0.5

    def test_rules_scale_install(self):
        cost = CostModel(install_ms=2.0)
        assert cost.install_time(1, n_rules=3) == 6.0

    def test_more_rounds_cost_more(self):
        problem = figure1_problem()
        cost = OVS_FAST
        wayup = schedule_update_time(wayup_schedule(problem), cost)
        oneshot = schedule_update_time(oneshot_schedule(problem), cost)
        assert wayup > oneshot

    def test_hardware_dominated_by_install(self):
        problem = figure1_problem()
        schedule = wayup_schedule(problem)
        fast = schedule_update_time(schedule, OVS_FAST)
        slow = schedule_update_time(schedule, HARDWARE_TCAM)
        assert slow > 5 * fast

    def test_two_phase_time(self):
        plan = two_phase_schedule(figure1_problem())
        time = two_phase_update_time(plan, OVS_FAST)
        assert time > 0
        # three phases => roughly three round times
        assert time == pytest.approx(
            sum(OVS_FAST.round_time(phase) for phase in plan.rounds)
        )

    def test_breakdown_rows(self):
        schedule = wayup_schedule(figure1_problem())
        rows = round_time_breakdown(schedule, OVS_FAST)
        assert len(rows) == schedule.n_rounds
        total = sum(row["total_ms"] for row in rows)
        assert total == pytest.approx(schedule_update_time(schedule, OVS_FAST))

    def test_presets_registered(self):
        assert {"ovs-fast", "ovs-loaded", "hardware-tcam", "wan-control"} <= set(
            PRESETS
        )
