"""Tests for the one-shot and two-phase baselines."""

import pytest

from repro.core.oneshot import oneshot_schedule
from repro.core.problem import UpdateProblem
from repro.core.twophase import (
    NEW_VERSION_TAG,
    TwoPhaseSchedule,
    two_phase_schedule,
)
from repro.core.verify import Property, verify_schedule
from repro.errors import UpdateModelError
from repro.netlab.figure1 import figure1_problem


class TestOneShot:
    def test_single_round(self):
        schedule = oneshot_schedule(figure1_problem())
        assert schedule.n_rounds == 1

    def test_includes_cleanup_by_default(self):
        schedule = oneshot_schedule(figure1_problem())
        assert schedule.includes_cleanup()

    def test_cleanup_can_be_skipped(self):
        schedule = oneshot_schedule(figure1_problem(), include_cleanup=False)
        assert not schedule.includes_cleanup()

    def test_rejects_noop(self):
        with pytest.raises(UpdateModelError):
            oneshot_schedule(UpdateProblem([1, 2, 3], [1, 2, 3]))

    def test_violates_wpe_on_figure1(self):
        schedule = oneshot_schedule(figure1_problem())
        report = verify_schedule(schedule, properties=(Property.WPE,))
        assert not report.ok

    def test_violates_blackhole_when_installs_exist(self):
        schedule = oneshot_schedule(figure1_problem())
        report = verify_schedule(schedule, properties=(Property.BLACKHOLE,))
        assert not report.ok


class TestTwoPhase:
    @pytest.fixture
    def plan(self) -> TwoPhaseSchedule:
        return two_phase_schedule(figure1_problem())

    def test_three_phases(self, plan):
        assert plan.n_rounds == 3
        assert len(plan.rounds) == 3

    def test_ingress_is_alone_in_phase_two(self, plan):
        assert plan.rounds[1] == frozenset({plan.problem.source})

    def test_prepare_covers_new_interior(self, plan):
        interior = set(plan.problem.new_path.nodes) - {
            plan.problem.source, plan.problem.destination
        }
        assert plan.prepare == interior

    def test_garbage_covers_old_forwarders(self, plan):
        assert plan.problem.source in plan.garbage or True
        for node in plan.garbage:
            assert node in plan.problem.old_path

    def test_rule_overhead_positive(self, plan):
        assert plan.rule_overhead() == len(plan.prepare) > 0

    def test_peak_rules_per_node(self, plan):
        peak = plan.peak_rules_per_node()
        # a node on both paths holds two rules at the transition peak
        both = set(plan.problem.old_path.nodes) & set(plan.problem.new_path.nodes)
        both -= {plan.problem.destination}
        assert all(peak[node] == 2 for node in both)

    def test_verification_by_construction(self, plan):
        report = plan.verification_report()
        assert report.ok
        assert "construction" in report.method
        assert Property.WPE in report.properties

    def test_rejects_noop(self):
        with pytest.raises(UpdateModelError):
            two_phase_schedule(UpdateProblem([1, 2, 3], [1, 2, 3]))

    def test_version_tags_distinct(self):
        assert NEW_VERSION_TAG != 0
