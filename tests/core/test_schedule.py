"""Unit tests for round schedules."""

import pytest

from repro.core.problem import UpdateKind, UpdateProblem
from repro.core.schedule import UpdateSchedule, sequential_schedule
from repro.errors import ScheduleError


@pytest.fixture
def problem():
    # old 1-2-3-4, new 1-5-3-2-4: installs 5; switches 1,2,3; no deletes
    return UpdateProblem([1, 2, 3, 4], [1, 5, 3, 2, 4])


class TestValidation:
    def test_accepts_full_cover(self, problem):
        schedule = UpdateSchedule(problem, [[5], [3, 2], [1]])
        assert schedule.n_rounds == 3

    def test_rejects_empty_round(self, problem):
        with pytest.raises(ScheduleError, match="empty"):
            UpdateSchedule(problem, [[5], [], [1, 2, 3]])

    def test_rejects_duplicate_node(self, problem):
        with pytest.raises(ScheduleError, match="twice"):
            UpdateSchedule(problem, [[5, 1], [1, 2, 3]])

    def test_rejects_unknown_node(self, problem):
        with pytest.raises(ScheduleError, match="not part"):
            UpdateSchedule(problem, [[5, 99], [1, 2, 3]])

    def test_rejects_missing_required(self, problem):
        with pytest.raises(ScheduleError, match="never scheduled"):
            UpdateSchedule(problem, [[5], [1, 2]])  # 3 missing

    def test_rejects_noop_node(self):
        problem = UpdateProblem([1, 2, 3, 4], [1, 2, 3, 4])
        with pytest.raises(ScheduleError):
            UpdateSchedule(problem, [[2]])

    def test_deletes_are_optional(self):
        problem = UpdateProblem([1, 2, 3], [1, 4, 3])
        schedule = UpdateSchedule(problem, [[4], [1]])
        assert not schedule.includes_cleanup()
        with_cleanup = schedule.with_cleanup()
        assert with_cleanup.includes_cleanup()
        assert with_cleanup.n_rounds == 3
        assert with_cleanup.rounds[-1] == frozenset({2})


class TestQueries:
    def test_round_of(self, problem):
        schedule = UpdateSchedule(problem, [[5], [3, 2], [1]])
        assert schedule.round_of(5) == 0
        assert schedule.round_of(2) == 1
        assert schedule.round_of(1) == 2
        assert schedule.round_of(4) is None  # destination, unscheduled

    def test_updates_in_round_sorted_with_kinds(self, problem):
        schedule = UpdateSchedule(problem, [[5], [3, 2], [1]])
        updates = schedule.updates_in_round(1)
        assert updates == [(2, UpdateKind.SWITCH), (3, UpdateKind.SWITCH)]

    def test_iteration_and_len(self, problem):
        schedule = UpdateSchedule(problem, [[5], [1, 2, 3]])
        assert len(schedule) == 2
        assert [len(r) for r in schedule] == [1, 3]

    def test_total_updates(self, problem):
        schedule = UpdateSchedule(problem, [[5], [1, 2, 3]])
        assert schedule.total_updates() == 4

    def test_merged_collapses_to_one_round(self, problem):
        schedule = UpdateSchedule(problem, [[5], [3, 2], [1]])
        merged = schedule.merged()
        assert merged.n_rounds == 1
        assert merged.rounds[0] == frozenset({1, 2, 3, 5})

    def test_with_cleanup_idempotent(self, problem):
        schedule = UpdateSchedule(problem, [[5], [1, 2, 3]])
        assert schedule.with_cleanup() is schedule  # nothing to delete


class TestSequential:
    def test_one_node_per_round(self):
        problem = UpdateProblem([1, 2, 3, 4], [1, 5, 3, 2, 4])
        schedule = sequential_schedule(problem)
        assert all(len(r) == 1 for r in schedule.rounds)
        assert schedule.total_updates() == len(problem.all_updates)

    def test_installs_come_first(self):
        problem = UpdateProblem([1, 2, 3], [1, 4, 3])
        schedule = sequential_schedule(problem)
        first = next(iter(schedule.rounds[0]))
        assert problem.kind(first) is UpdateKind.INSTALL

    def test_deletes_come_last(self):
        problem = UpdateProblem([1, 2, 3], [1, 4, 3])
        schedule = sequential_schedule(problem)
        last = next(iter(schedule.rounds[-1]))
        assert problem.kind(last) is UpdateKind.DELETE


class TestSerialization:
    def test_roundtrip(self, problem):
        schedule = UpdateSchedule(problem, [[5], [3, 2], [1]], algorithm="custom")
        back = UpdateSchedule.from_dict(problem, schedule.to_dict())
        assert back.rounds == schedule.rounds
        assert back.algorithm == "custom"

    def test_missing_rounds_raises(self, problem):
        with pytest.raises(ScheduleError):
            UpdateSchedule.from_dict(problem, {"algorithm": "x"})
