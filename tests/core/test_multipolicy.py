"""Tests for multi-policy (shared-rule and isolated) updates."""

import pytest

from repro.core.multipolicy import (
    JointUpdateProblem,
    PolicyView,
    greedy_joint_schedule,
    merge_isolated_schedules,
    verify_joint_round,
    verify_joint_schedule,
)
from repro.core.peacock import peacock_schedule
from repro.core.problem import RuleState, UpdateKind, UpdateProblem
from repro.core.verify import Property
from repro.errors import InfeasibleUpdateError, UpdateModelError


@pytest.fixture
def two_policies():
    """Two sources routing to destination 6, sharing node 3's rule."""
    p1 = UpdateProblem([1, 3, 4, 6], [1, 3, 5, 6], name="p1")
    p2 = UpdateProblem([2, 3, 4, 6], [2, 3, 5, 6], name="p2")
    return [p1, p2]


class TestJointProblem:
    def test_shared_destination_required(self):
        p1 = UpdateProblem([1, 2, 3], [1, 4, 3])
        p2 = UpdateProblem([5, 6, 7], [5, 8, 7])
        with pytest.raises(UpdateModelError, match="destination"):
            JointUpdateProblem([p1, p2])

    def test_conflicting_rules_rejected(self):
        p1 = UpdateProblem([1, 3, 6], [1, 3, 6])
        p2 = UpdateProblem([2, 3, 4, 6], [2, 3, 4, 6])
        # p1 says 3->6, p2 says 3->4: destination-based rules conflict
        with pytest.raises(UpdateModelError, match="conflict"):
            JointUpdateProblem([p1, p2])

    def test_empty_rejected(self):
        with pytest.raises(UpdateModelError):
            JointUpdateProblem([])

    def test_shared_kind(self, two_policies):
        joint = JointUpdateProblem(two_policies)
        assert joint.kind(3) is UpdateKind.SWITCH
        assert joint.kind(5) is UpdateKind.INSTALL
        assert joint.kind(4) is UpdateKind.DELETE
        assert joint.kind(1) is UpdateKind.NOOP  # next hop unchanged

    def test_next_hop_shared(self, two_policies):
        joint = JointUpdateProblem(two_policies)
        assert joint.next_hop(3, RuleState.OLD) == 4
        assert joint.next_hop(3, RuleState.NEW) == 5

    def test_required_updates(self, two_policies):
        joint = JointUpdateProblem(two_policies)
        assert joint.required_updates == {3, 5}
        assert joint.cleanup_updates == {4}

    def test_policy_view_surfaces(self, two_policies):
        joint = JointUpdateProblem(two_policies)
        view = PolicyView(joint, two_policies[0])
        assert view.source == 1
        assert view.destination == 6
        assert view.next_hop(3, RuleState.NEW) == 5


class TestJointScheduling:
    def test_greedy_produces_safe_schedule(self, two_policies):
        joint = JointUpdateProblem(two_policies)
        schedule = greedy_joint_schedule(
            joint, properties=(Property.RLF, Property.BLACKHOLE)
        )
        report = verify_joint_schedule(
            joint, schedule, properties=(Property.RLF, Property.BLACKHOLE)
        )
        assert report.ok

    def test_round_checked_for_all_policies(self, two_policies):
        joint = JointUpdateProblem(two_policies)
        # flipping 3 before installing 5 blackholes BOTH policies
        violations = verify_joint_round(
            joint, set(), {3}, (Property.BLACKHOLE,)
        )
        assert len(violations) == 2

    def test_waypoints_checked_per_policy(self):
        p1 = UpdateProblem([1, 3, 4, 6], [1, 3, 5, 6], waypoint=3, name="wp1")
        p2 = UpdateProblem([2, 3, 4, 6], [2, 3, 5, 6], name="plain")
        joint = JointUpdateProblem([p1, p2])
        schedule = greedy_joint_schedule(
            joint, properties=(Property.WPE, Property.BLACKHOLE)
        )
        report = verify_joint_schedule(
            joint, schedule, properties=(Property.WPE, Property.BLACKHOLE)
        )
        assert report.ok

    def test_deadlock_raises(self):
        # Two policies pulling node rules in incompatible directions can
        # deadlock; engineer one by making the only safe order circular.
        # p1 needs 3 installed-late (else blackhole), p2 needs 3 early.
        # Simplest deadlock: a single policy whose every singleton round
        # violates -- the crossing under WPE+SLF.
        from repro.core.hardness import crossing_instance

        problem = crossing_instance()
        joint = JointUpdateProblem([problem])
        with pytest.raises(InfeasibleUpdateError):
            greedy_joint_schedule(
                joint, properties=(Property.WPE, Property.SLF)
            )


class TestJointOracleEquivalence:
    """The per-policy SafetyOracle path vs the from-scratch reference."""

    def test_schedules_identical_on_shared_fixture(self, two_policies):
        joint = JointUpdateProblem(two_policies)
        for properties in (
            (Property.RLF, Property.BLACKHOLE),
            (Property.SLF, Property.BLACKHOLE),
            (Property.BLACKHOLE,),
        ):
            fast = greedy_joint_schedule(
                joint, properties=properties, use_oracle=True
            )
            slow = greedy_joint_schedule(
                joint, properties=properties, use_oracle=False
            )
            assert fast.rounds == slow.rounds, properties

    def test_schedules_identical_with_mixed_waypoints(self):
        p1 = UpdateProblem([1, 3, 4, 6], [1, 3, 5, 6], waypoint=3, name="wp1")
        p2 = UpdateProblem([2, 3, 4, 6], [2, 3, 5, 6], name="plain")
        joint = JointUpdateProblem([p1, p2])
        properties = (Property.WPE, Property.RLF, Property.BLACKHOLE)
        fast = greedy_joint_schedule(joint, properties=properties, use_oracle=True)
        slow = greedy_joint_schedule(joint, properties=properties, use_oracle=False)
        assert fast.rounds == slow.rounds
        assert verify_joint_schedule(joint, fast, properties).ok

    def test_deadlock_raised_on_both_paths(self):
        from repro.core.hardness import crossing_instance

        joint = JointUpdateProblem([crossing_instance()])
        for use_oracle in (True, False):
            with pytest.raises(InfeasibleUpdateError):
                greedy_joint_schedule(
                    joint,
                    properties=(Property.WPE, Property.SLF),
                    use_oracle=use_oracle,
                )

    def test_policy_view_duck_surface(self, two_policies):
        joint = JointUpdateProblem(two_policies)
        view = PolicyView(joint, two_policies[0])
        assert view.nodes == joint.nodes
        assert view.old_next[3] == 4 and view.new_next[3] == 5
        # nodes outside a policy's own paths still resolve via the joint
        assert view.old_next[2] == 3
        assert view.name.endswith(two_policies[0].name)


class TestIsolatedMerge:
    def test_merge_rounds(self):
        p1 = UpdateProblem([1, 2, 3, 4], [1, 3, 2, 4], name="a")
        p2 = UpdateProblem([1, 2, 3, 4], [1, 3, 4], name="b")
        s1 = peacock_schedule(p1, include_cleanup=False)
        s2 = peacock_schedule(p2, include_cleanup=False)
        plan = merge_isolated_schedules([s1, s2])
        assert plan.n_rounds == max(s1.n_rounds, s2.n_rounds)
        combined = plan.combined_rounds()
        assert len(combined) == plan.n_rounds
        assert plan.total_updates() == s1.total_updates() + s2.total_updates()

    def test_merge_requires_input(self):
        with pytest.raises(UpdateModelError):
            merge_isolated_schedules([])
