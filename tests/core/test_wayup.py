"""Tests for the WayUp scheduler (WPE by construction)."""

import pytest

from repro.core.hardness import crossing_instance, waypoint_slalom_instance
from repro.core.problem import UpdateKind, UpdateProblem
from repro.core.verify import Property, verify_exhaustive, verify_schedule
from repro.core.wayup import ROUND_NAMES, wayup_schedule
from repro.errors import UpdateModelError
from repro.netlab.figure1 import figure1_problem


class TestStructure:
    def test_requires_waypoint(self):
        problem = UpdateProblem([1, 2, 3], [1, 4, 3])
        with pytest.raises(UpdateModelError, match="waypoint"):
            wayup_schedule(problem)

    def test_rejects_noop_problem(self):
        problem = UpdateProblem([1, 2, 3], [1, 2, 3], waypoint=2)
        with pytest.raises(UpdateModelError, match="no rule changes"):
            wayup_schedule(problem)

    def test_round_names_subset_of_canon(self):
        schedule = wayup_schedule(figure1_problem())
        names = schedule.metadata["round_names"]
        assert set(names) <= set(ROUND_NAMES)
        # emission order preserved
        assert names == [n for n in ROUND_NAMES if n in names]

    def test_installs_first(self, simple_waypoint_problem):
        schedule = wayup_schedule(simple_waypoint_problem)
        first = schedule.rounds[0]
        kinds = {simple_waypoint_problem.kind(n) for n in first}
        assert kinds == {UpdateKind.INSTALL}

    def test_source_after_shared_prefix(self):
        # node 2 stays on the shared prefix but changes its next hop
        problem = UpdateProblem([1, 2, 3, 4, 5], [1, 6, 2, 8, 3, 7, 5], waypoint=3)
        schedule = wayup_schedule(problem)
        names = schedule.metadata["round_names"]
        source_round = schedule.round_of(1)
        shared_round = schedule.round_of(2)
        assert shared_round < source_round
        assert names[source_round] == "source"

    def test_late_movers_after_source(self):
        problem = crossing_instance()  # node 2 is a late mover
        schedule = wayup_schedule(problem)
        assert schedule.round_of(2) > schedule.round_of(1)

    def test_cleanup_optional(self):
        problem = figure1_problem()
        with_cleanup = wayup_schedule(problem, include_cleanup=True)
        without = wayup_schedule(problem, include_cleanup=False)
        assert with_cleanup.includes_cleanup()
        assert not without.includes_cleanup()
        assert with_cleanup.n_rounds == without.n_rounds + 1

    def test_at_most_six_rounds(self):
        for k in range(1, 6):
            schedule = wayup_schedule(waypoint_slalom_instance(k))
            assert schedule.n_rounds <= 6

    def test_every_required_update_scheduled_once(self):
        problem = figure1_problem()
        schedule = wayup_schedule(problem)
        assert schedule.scheduled_nodes() >= problem.required_updates


class TestWPEGuarantee:
    @pytest.mark.parametrize("builder", [
        figure1_problem,
        crossing_instance,
        lambda: waypoint_slalom_instance(2),
        lambda: waypoint_slalom_instance(4),
    ])
    def test_wpe_and_blackhole_free(self, builder):
        schedule = wayup_schedule(builder())
        report = verify_schedule(
            schedule, properties=(Property.WPE, Property.BLACKHOLE)
        )
        assert report.ok, [str(v) for v in report.violations]

    def test_exhaustive_agrees_on_figure1(self):
        schedule = wayup_schedule(figure1_problem())
        report = verify_exhaustive(
            schedule, properties=(Property.WPE, Property.BLACKHOLE)
        )
        assert report.ok

    def test_loops_are_allowed(self):
        # The slalom forces WayUp into transient loops: WPE holds but
        # relaxed loop freedom does not (the HotNets'14 trade-off).
        schedule = wayup_schedule(waypoint_slalom_instance(3))
        wpe = verify_schedule(schedule, properties=(Property.WPE,))
        assert wpe.ok
        rlf = verify_schedule(schedule, properties=(Property.RLF,))
        assert not rlf.ok

    def test_figure1_reference_rounds(self):
        """Pin the exact Figure-1 schedule as a regression reference."""
        schedule = wayup_schedule(figure1_problem())
        rounds = [set(r) for r in schedule.rounds]
        assert rounds == [{6, 7, 8}, {3, 5}, {2}, {1}, {4, 9}]
