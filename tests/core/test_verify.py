"""Unit tests for the transient-property verifiers."""

import pytest

from repro.core.problem import UpdateProblem
from repro.core.schedule import UpdateSchedule
from repro.core.transient import UnionGraph
from repro.core.verify import (
    Property,
    check_blackhole,
    check_rlf,
    check_slf,
    check_wpe,
    default_properties,
    is_round_safe,
    verify_exhaustive,
    verify_schedule,
)
from repro.errors import VerificationBudgetError, VerificationError


@pytest.fixture
def crossing():
    """old 1-2-3-4-5, new 1-4-3-2-5, w=3: the canonical crossing."""
    return UpdateProblem([1, 2, 3, 4, 5], [1, 4, 3, 2, 5], waypoint=3)


class TestWPE:
    def test_oneshot_violates(self, crossing):
        schedule = UpdateSchedule(crossing, [[1, 2, 3, 4]])
        union = UnionGraph.for_round(schedule, 0)
        violation = check_wpe(union, 0)
        assert violation is not None
        assert 3 not in violation.witness
        assert violation.witness[0] == 1 and violation.witness[-1] == 5

    def test_safe_round_passes(self, crossing):
        schedule = UpdateSchedule(crossing, [[3, 4], [1], [2]])
        for index in range(3):
            union = UnionGraph.for_round(schedule, index)
            assert check_wpe(union, index) is None

    def test_requires_waypoint(self):
        problem = UpdateProblem([1, 2, 3], [1, 4, 3])
        schedule = UpdateSchedule(problem, [[4, 1]])
        union = UnionGraph.for_round(schedule, 0)
        with pytest.raises(VerificationError):
            check_wpe(union, 0)

    def test_witness_is_a_real_path(self, crossing):
        schedule = UpdateSchedule(crossing, [[2], [1, 3, 4]])
        union = UnionGraph.for_round(schedule, 0)
        violation = check_wpe(union, 0)
        # updating 2 first: 1(old)->2(new)->5 bypasses 3
        assert violation is not None
        assert violation.witness == (1, 2, 5)


class TestSLF:
    def test_two_cycle_found(self):
        problem = UpdateProblem([1, 2, 3, 4], [1, 3, 2, 4])
        schedule = UpdateSchedule(problem, [[1, 2, 3]])
        union = UnionGraph.for_round(schedule, 0)
        violation = check_slf(union, 0)
        assert violation is not None
        assert violation.witness[0] == violation.witness[-1]

    def test_forward_round_is_safe(self):
        problem = UpdateProblem([1, 2, 3, 4], [1, 3, 4])  # skip 2: forward
        schedule = UpdateSchedule(problem, [[1], [2]])
        union = UnionGraph.for_round(schedule, 0)
        assert check_slf(union, 0) is None

    def test_unreachable_cycle_still_counts(self):
        # 1 flips first and permanently bypasses 2<->3; their cycle is
        # unreachable but strong loop freedom forbids it anyway.
        problem = UpdateProblem([1, 2, 3, 4], [1, 3, 2, 4])
        schedule = UpdateSchedule(problem, [[1], [2, 3]])
        union = UnionGraph.for_round(schedule, 1)
        assert check_slf(union, 1) is not None


class TestRLF:
    def test_reachable_loop_detected(self):
        problem = UpdateProblem([1, 2, 3, 4], [1, 3, 2, 4])
        schedule = UpdateSchedule(problem, [[1, 2, 3]])
        union = UnionGraph.for_round(schedule, 0)
        violation, conservative = check_rlf(union, 0, exact=True)
        assert violation is not None and not conservative
        # witness ends with a revisited node
        assert violation.witness[-1] in violation.witness[:-1]

    def test_unreachable_loop_tolerated(self):
        # After flipping 2 alone (round 0), the trajectory is pinned to
        # 1->2->5; flipping 3 next (round 1) cannot affect it: the 3->2
        # edge is unreachable from the source, so RLF accepts.
        problem = UpdateProblem([1, 2, 3, 4, 5], [1, 4, 3, 2, 5])
        schedule = UpdateSchedule(problem, [[2], [3], [4], [1]])
        union = UnionGraph.for_round(schedule, 1)
        violation, _ = check_rlf(union, 1, exact=True)
        assert violation is None

    def test_rlf_accepts_where_slf_rejects(self):
        # Reversal on six nodes: once the source jumps to 5, the whole
        # backward interior {2,3,4} can flip in one round.  Transient
        # 2<->3 loops exist (SLF violation) but no packet entering at 1
        # can reach them (RLF fine) -- the PODC'15 relaxation, exactly.
        problem = UpdateProblem([1, 2, 3, 4, 5, 6], [1, 5, 4, 3, 2, 6])
        schedule = UpdateSchedule(problem, [[1], [2, 3, 4], [5]])
        union = UnionGraph.for_round(schedule, 1)
        assert check_slf(union, 1) is not None
        violation, _ = check_rlf(union, 1, exact=True)
        assert violation is None

    def test_conservative_mode_flags_potential(self):
        problem = UpdateProblem([1, 2, 3, 4], [1, 3, 2, 4])
        schedule = UpdateSchedule(problem, [[1, 2, 3]])
        union = UnionGraph.for_round(schedule, 0)
        violation, conservative = check_rlf(union, 0, exact=False)
        assert violation is not None and conservative

    def test_conservative_mode_accepts_clean_rounds(self):
        problem = UpdateProblem([1, 2, 3, 4], [1, 3, 4])
        schedule = UpdateSchedule(problem, [[1], [2]])
        union = UnionGraph.for_round(schedule, 0)
        violation, conservative = check_rlf(union, 0, exact=False)
        assert violation is None and not conservative

    def test_budget_raises(self):
        # long chain of flexible nodes forces branching
        n = 40
        old = list(range(1, n + 1))
        new = [1, *range(n - 1, 1, -1), n]
        problem = UpdateProblem(old, new)
        schedule = UpdateSchedule(problem, [sorted(problem.required_updates)])
        union = UnionGraph.for_round(schedule, 0)
        with pytest.raises(VerificationBudgetError):
            check_rlf(union, 0, exact=True, budget=5)


class TestBlackhole:
    def test_reachable_install_gap(self):
        problem = UpdateProblem([1, 2, 3], [1, 4, 3])
        schedule = UpdateSchedule(problem, [[1, 4]])
        union = UnionGraph.for_round(schedule, 0)
        violation = check_blackhole(union, 0)
        assert violation is not None
        assert violation.witness[-1] == 4

    def test_install_first_is_safe(self):
        problem = UpdateProblem([1, 2, 3], [1, 4, 3])
        schedule = UpdateSchedule(problem, [[4], [1]])
        for index in range(2):
            union = UnionGraph.for_round(schedule, index)
            assert check_blackhole(union, index) is None


class TestScheduleLevel:
    def test_default_properties(self, crossing):
        assert Property.WPE in default_properties(crossing)
        plain = UpdateProblem([1, 2, 3], [1, 4, 3])
        assert Property.WPE not in default_properties(plain)
        assert Property.BLACKHOLE in default_properties(plain)

    def test_verify_schedule_reports_round_index(self, crossing):
        schedule = UpdateSchedule(crossing, [[2], [1, 3, 4]])
        report = verify_schedule(schedule, properties=(Property.WPE,))
        assert not report.ok
        assert report.violations[0].round_index == 0

    def test_stop_at_first(self, crossing):
        schedule = UpdateSchedule(crossing, [[2], [1, 3, 4]])
        report = verify_schedule(
            schedule, properties=(Property.WPE,), stop_at_first=True
        )
        assert len(report.violations) == 1

    def test_is_round_safe(self, crossing):
        schedule = UpdateSchedule(crossing, [[3, 4], [1], [2]])
        assert is_round_safe(schedule, 0, (Property.WPE,))
        bad = UpdateSchedule(crossing, [[2], [1, 3, 4]])
        assert not is_round_safe(bad, 0, (Property.WPE,))

    def test_by_property_filter(self, crossing):
        schedule = UpdateSchedule(crossing, [[1, 2, 3, 4]])
        report = verify_schedule(
            schedule, properties=(Property.WPE, Property.SLF)
        )
        assert report.by_property(Property.WPE)
        assert report.by_property(Property.SLF)


class TestExhaustiveOracle:
    def test_agrees_on_safe_schedule(self, crossing):
        schedule = UpdateSchedule(crossing, [[3, 4], [1], [2]])
        poly = verify_schedule(schedule, properties=(Property.WPE,))
        brute = verify_exhaustive(schedule, properties=(Property.WPE,))
        assert poly.ok and brute.ok

    def test_agrees_on_unsafe_schedule(self, crossing):
        schedule = UpdateSchedule(crossing, [[1, 2, 3, 4]])
        properties = (Property.WPE, Property.SLF, Property.RLF, Property.BLACKHOLE)
        poly = verify_schedule(schedule, properties=properties)
        brute = verify_exhaustive(schedule, properties=properties)
        assert not poly.ok and not brute.ok
        for prop in (Property.WPE,):
            assert bool(poly.by_property(prop)) == bool(brute.by_property(prop))

    def test_method_label(self, crossing):
        schedule = UpdateSchedule(crossing, [[3, 4], [1], [2]])
        assert verify_exhaustive(schedule).method == "exhaustive"
