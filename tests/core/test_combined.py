"""Tests for combined-property scheduling (SIGMETRICS'16 direction)."""

import pytest

from hypothesis import HealthCheck, given, settings

from repro.core.combined import combined_greedy_schedule, strongest_feasible_schedule
from repro.core.hardness import (
    crossing_instance,
    double_diamond_instance,
    reversal_instance,
    waypoint_slalom_instance,
)
from repro.core.problem import UpdateProblem
from repro.core.verify import Property, verify_schedule
from repro.core.wayup import wayup_schedule
from repro.errors import InfeasibleUpdateError, UpdateModelError
from tests.core.test_properties_hypothesis import update_instances


class TestCombinedGreedy:
    def test_needs_properties(self):
        with pytest.raises(UpdateModelError):
            combined_greedy_schedule(crossing_instance(), ())

    def test_wpe_needs_waypoint(self):
        problem = UpdateProblem([1, 2, 3], [1, 4, 3])
        with pytest.raises(UpdateModelError, match="waypoint"):
            combined_greedy_schedule(problem, (Property.WPE,))

    def test_rejects_noop(self):
        problem = UpdateProblem([1, 2, 3], [1, 2, 3], waypoint=2)
        with pytest.raises(UpdateModelError, match="no-op"):
            combined_greedy_schedule(problem, (Property.BLACKHOLE,))

    def test_crossing_wpe_matches_wayup(self):
        problem = crossing_instance()
        schedule = combined_greedy_schedule(
            problem, (Property.WPE, Property.BLACKHOLE), include_cleanup=False
        )
        wayup = wayup_schedule(problem, include_cleanup=False)
        assert [set(r) for r in schedule.rounds] == [set(r) for r in wayup.rounds]

    def test_crossing_wpe_slf_deadlocks(self):
        with pytest.raises(InfeasibleUpdateError, match="deadlock"):
            combined_greedy_schedule(
                crossing_instance(), (Property.WPE, Property.SLF)
            )

    def test_diamond_full_combination_feasible(self):
        problem = double_diamond_instance()
        properties = (Property.WPE, Property.SLF, Property.BLACKHOLE)
        schedule = combined_greedy_schedule(problem, properties)
        assert verify_schedule(schedule, properties=properties).ok

    def test_slalom_wpe_rlf_infeasible(self):
        # crossings force WPE-vs-loop trade-offs at any size
        with pytest.raises(InfeasibleUpdateError):
            combined_greedy_schedule(
                waypoint_slalom_instance(2), (Property.WPE, Property.RLF)
            )

    def test_reversal_rlf_matches_peacock_quality(self):
        from repro.core.peacock import peacock_schedule

        problem = reversal_instance(10)
        combined = combined_greedy_schedule(
            problem, (Property.RLF, Property.BLACKHOLE), include_cleanup=False
        )
        peacock = peacock_schedule(problem, include_cleanup=False)
        assert combined.n_rounds <= peacock.n_rounds + 1
        assert verify_schedule(combined, properties=(Property.RLF,)).ok

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(update_instances(with_waypoint=True))
    def test_emitted_schedules_always_verify(self, problem):
        properties = (Property.WPE, Property.BLACKHOLE)
        try:
            schedule = combined_greedy_schedule(problem, properties)
        except (InfeasibleUpdateError, UpdateModelError):
            return
        report = verify_schedule(schedule, properties=properties)
        assert report.ok, [str(v) for v in report.violations]


class TestStrongestFeasible:
    def test_crossing_degrades_to_wpe_only(self):
        schedule, properties = strongest_feasible_schedule(crossing_instance())
        assert Property.WPE in properties
        assert Property.SLF not in properties and Property.RLF not in properties
        assert verify_schedule(schedule, properties=properties).ok

    def test_diamond_keeps_everything(self):
        schedule, properties = strongest_feasible_schedule(
            double_diamond_instance()
        )
        assert set(properties) == {Property.WPE, Property.SLF, Property.BLACKHOLE}

    def test_plain_problem_gets_slf(self):
        schedule, properties = strongest_feasible_schedule(reversal_instance(8))
        assert Property.SLF in properties
        assert Property.WPE not in properties

    def test_metadata_records_properties(self):
        schedule, properties = strongest_feasible_schedule(
            double_diamond_instance()
        )
        assert schedule.metadata["properties"] == [p.value for p in properties]
