"""Tests for the greedy strong-loop-free scheduler."""

import pytest

from repro.core.greedy_slf import greedy_slf_schedule
from repro.core.hardness import reversal_instance
from repro.core.peacock import peacock_schedule
from repro.core.problem import UpdateProblem
from repro.core.verify import Property, verify_exhaustive, verify_schedule
from repro.errors import UpdateModelError


class TestGreedySLF:
    def test_rejects_noop_problem(self):
        with pytest.raises(UpdateModelError):
            greedy_slf_schedule(UpdateProblem([1, 2, 3], [1, 2, 3]))

    def test_reversal_needs_linear_rounds(self):
        # The defining lower bound: strong loop freedom peels the chain
        # one node per round -- n-2 interior nodes => n-2 rounds.
        for n in (6, 8, 12):
            schedule = greedy_slf_schedule(reversal_instance(n), include_cleanup=False)
            assert schedule.n_rounds == n - 2, n

    def test_always_slf_safe(self):
        for n in (5, 7, 10):
            schedule = greedy_slf_schedule(reversal_instance(n))
            report = verify_schedule(schedule, properties=(Property.SLF,))
            assert report.ok

    def test_exhaustive_agrees(self):
        schedule = greedy_slf_schedule(reversal_instance(7))
        report = verify_exhaustive(
            schedule, properties=(Property.SLF, Property.BLACKHOLE)
        )
        assert report.ok

    def test_slf_implies_rlf(self):
        schedule = greedy_slf_schedule(reversal_instance(8))
        report = verify_schedule(schedule, properties=(Property.RLF,))
        assert report.ok

    def test_never_beats_peacock_on_reversal(self):
        for n in (6, 10, 14):
            slf = greedy_slf_schedule(reversal_instance(n), include_cleanup=False)
            rlf = peacock_schedule(reversal_instance(n), include_cleanup=False)
            assert slf.n_rounds >= rlf.n_rounds

    def test_forward_only_instance_is_fast(self):
        # new path only skips ahead: everything flips in one round
        problem = UpdateProblem(list(range(1, 9)), [1, 3, 5, 7, 8])
        schedule = greedy_slf_schedule(problem, include_cleanup=False)
        assert schedule.n_rounds == 1

    def test_install_round_separate(self):
        problem = UpdateProblem([1, 2, 3, 4], [1, 5, 3, 2, 4])
        schedule = greedy_slf_schedule(problem, include_cleanup=False)
        assert schedule.rounds[0] == frozenset({5})
        assert schedule.metadata["round_names"][0] == "install"
