"""Unit tests for the transient-state machinery (phases, union graph)."""

import pytest

from repro.core.problem import RuleState, UpdateProblem
from repro.core.schedule import UpdateSchedule
from repro.core.transient import (
    NodePhase,
    UnionGraph,
    enumerate_round_configurations,
    functional_cycle,
    functional_graph,
    phases_for_round,
)
from repro.errors import VerificationError


@pytest.fixture
def problem():
    # old 1-2-3-4, new 1-3-2-4
    return UpdateProblem([1, 2, 3, 4], [1, 3, 2, 4])


@pytest.fixture
def schedule(problem):
    return UpdateSchedule(problem, [[3], [1], [2]])


class TestPhases:
    def test_middle_round(self, schedule):
        phases = phases_for_round(schedule, 1)
        assert phases[3] is NodePhase.FIXED_NEW
        assert phases[1] is NodePhase.FLEXIBLE
        assert phases[2] is NodePhase.FIXED_OLD

    def test_first_round(self, schedule):
        phases = phases_for_round(schedule, 0)
        assert phases[3] is NodePhase.FLEXIBLE
        assert phases[1] is NodePhase.FIXED_OLD

    def test_unscheduled_nodes_stay_old(self):
        problem = UpdateProblem([1, 2, 3], [1, 4, 3])
        schedule = UpdateSchedule(problem, [[4], [1]])  # delete of 2 unscheduled
        phases = phases_for_round(schedule, 1)
        assert phases[2] is NodePhase.FIXED_OLD

    def test_out_of_range_round(self, schedule):
        with pytest.raises(VerificationError):
            phases_for_round(schedule, 5)


class TestUnionGraph:
    def test_flexible_node_has_both_edges(self, schedule):
        union = UnionGraph.for_round(schedule, 1)
        assert sorted(union.successors(1)) == [2, 3]

    def test_fixed_nodes_have_one_edge(self, schedule):
        union = UnionGraph.for_round(schedule, 1)
        assert union.successors(3) == [2]  # fixed new
        assert union.successors(2) == [3]  # fixed old

    def test_destination_has_no_choices(self, schedule):
        union = UnionGraph.for_round(schedule, 1)
        assert union.choices(4) == ()

    def test_may_drop_for_install(self):
        problem = UpdateProblem([1, 2, 3], [1, 4, 3])
        schedule = UpdateSchedule(problem, [[4, 1]])
        union = UnionGraph.for_round(schedule, 0)
        assert union.may_drop(4)      # flexible install: OLD state drops
        assert not union.may_drop(1)  # on both paths

    def test_noop_node_deduplicates_edges(self):
        problem = UpdateProblem([1, 2, 3, 4], [1, 2, 3, 4])
        # nothing changes; phases built directly
        union = UnionGraph.from_update_sets(problem, set(), set())
        assert union.successors(2) == [3]

    def test_reachability(self, schedule):
        # round 1: 3 is new (->2), 2 is old (->3), 1 flexible: node 4 is
        # unreachable -- every choice funnels into the 2<->3 region.
        union = UnionGraph.for_round(schedule, 1)
        reachable = union.reachable_from(1)
        assert set(reachable) == {1, 2, 3}
        # in the final round, 2 flips and 4 becomes reachable again
        final = UnionGraph.for_round(schedule, 2)
        assert 4 in final.reachable_from(1)

    def test_path_to_avoiding(self, schedule):
        union = UnionGraph.for_round(schedule, 1)
        path = union.path_to(4, avoid=2)
        assert path is None or 2 not in path

    def test_find_cycle_in_mixed_round(self, problem):
        # round {1,3} together: 1->3 new, 3->2 new, 2->3 old => cycle 2<->3
        schedule = UpdateSchedule(problem, [[1, 3], [2]])
        union = UnionGraph.for_round(schedule, 0)
        cycle = union.find_cycle()
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert set(cycle) >= {2, 3}

    def test_no_cycle_in_safe_round(self, problem):
        # flipping 2 first is safe: 2's new edge (->4) only jumps forward
        safe = UpdateSchedule(problem, [[2], [1], [3]])
        union = UnionGraph.for_round(safe, 0)
        assert union.find_cycle() is None

    def test_cycle_restricted_to_subset(self, problem):
        schedule = UpdateSchedule(problem, [[1, 3], [2]])
        union = UnionGraph.for_round(schedule, 0)
        assert union.find_cycle(within={1, 4}) is None

    def test_reachable_drop_witness(self):
        problem = UpdateProblem([1, 2, 3], [1, 4, 3])
        schedule = UpdateSchedule(problem, [[4, 1]])
        union = UnionGraph.for_round(schedule, 0)
        hit = union.reachable_drop()
        assert hit is not None
        path, node = hit
        assert node == 4
        assert path[0] == 1 and path[-1] == 4


class TestEnumeration:
    def test_counts_all_subsets(self, schedule):
        problem = schedule.problem
        configs = list(enumerate_round_configurations(schedule, 0))
        assert len(configs) == 2  # one flexible node -> 2 subsets
        big = UpdateSchedule(problem, [[1, 2, 3]])
        assert len(list(enumerate_round_configurations(big, 0))) == 8

    def test_budget_enforced(self, problem):
        schedule = UpdateSchedule(problem, [[1, 2, 3]])
        with pytest.raises(VerificationError, match="capped"):
            list(enumerate_round_configurations(schedule, 0, max_flexible=2))

    def test_earlier_rounds_fixed_new(self, schedule):
        configs = list(enumerate_round_configurations(schedule, 2))
        for config in configs:
            assert config.state_of(3) is RuleState.NEW
            assert config.state_of(1) is RuleState.NEW


class TestFunctionalGraph:
    def test_graph_shape(self, problem):
        from repro.core.problem import Configuration

        config = Configuration(problem=problem, states={})
        graph = functional_graph(config)
        assert graph == {1: 2, 2: 3, 3: 4}

    def test_cycle_detection(self, problem):
        from repro.core.problem import Configuration

        states = {1: RuleState.NEW, 3: RuleState.NEW}  # 3->2, 2->3 cycle
        config = Configuration(problem=problem, states=states)
        cycle = functional_cycle(config)
        assert cycle is not None
        assert set(cycle) == {2, 3}

    def test_acyclic_returns_none(self, problem):
        from repro.core.problem import Configuration

        config = Configuration(problem=problem, states={})
        assert functional_cycle(config) is None
