"""Tests for the Peacock scheduler (relaxed loop freedom, few rounds)."""

import pytest

from repro.core.hardness import reversal_instance, sawtooth_instance
from repro.core.peacock import classify_forward_backward, peacock_schedule
from repro.core.problem import UpdateKind, UpdateProblem
from repro.core.verify import Property, verify_exhaustive, verify_schedule
from repro.errors import UpdateModelError


class TestClassification:
    def test_forward_jump(self):
        problem = UpdateProblem([1, 2, 3, 4], [1, 3, 4])
        forward, backward = classify_forward_backward(problem)
        assert 1 in forward and not backward

    def test_backward_jump(self):
        problem = UpdateProblem([1, 2, 3, 4], [1, 3, 2, 4])
        forward, backward = classify_forward_backward(problem)
        assert 3 in backward
        assert 1 in forward  # 1 -> 3 jumps ahead
        assert 2 in forward  # 2 -> 4 jumps ahead

    def test_chain_through_new_only_nodes(self):
        # 1 -> 5 -> 6 -> 3: exit node 3 is ahead of 1 => forward
        problem = UpdateProblem([1, 2, 3, 4], [1, 5, 6, 3, 4])
        forward, backward = classify_forward_backward(problem)
        assert 1 in forward

    def test_chain_exiting_backward(self):
        # 3 -> 5 -> 2: exit node 2 is behind 3 => backward
        problem = UpdateProblem([1, 2, 3, 4], [1, 3, 5, 2, 4])
        forward, backward = classify_forward_backward(problem)
        assert 3 in backward

    def test_installs_not_classified(self):
        problem = UpdateProblem([1, 2, 3], [1, 4, 3])
        forward, backward = classify_forward_backward(problem)
        assert 4 not in forward | backward


class TestSchedule:
    def test_rejects_noop_problem(self):
        problem = UpdateProblem([1, 2, 3], [1, 2, 3])
        with pytest.raises(UpdateModelError):
            peacock_schedule(problem)

    def test_reversal_needs_three_switch_rounds(self):
        schedule = peacock_schedule(reversal_instance(12), include_cleanup=False)
        assert schedule.n_rounds == 3
        names = schedule.metadata["round_names"]
        assert names[0] == "forward"

    def test_reversal_round_counts_stay_constant(self):
        # The relaxation makes the reversal trivial at any size.
        for n in (6, 10, 20, 40):
            schedule = peacock_schedule(reversal_instance(n), include_cleanup=False)
            assert schedule.n_rounds == 3, n

    def test_install_round_first_when_present(self):
        problem = UpdateProblem([1, 2, 3, 4], [1, 5, 3, 2, 4])
        schedule = peacock_schedule(problem)
        assert schedule.metadata["round_names"][0] == "install"
        assert schedule.rounds[0] == frozenset({5})

    def test_cleanup_round_last(self):
        problem = UpdateProblem([1, 2, 3, 4], [1, 5, 2, 4])  # 3 goes stale
        schedule = peacock_schedule(problem, include_cleanup=True)
        assert schedule.metadata["round_names"][-1] == "cleanup"
        assert schedule.rounds[-1] == frozenset({3})

    @pytest.mark.parametrize("n,block", [(8, 2), (10, 3), (12, 5)])
    def test_sawtooth_rlf_safe(self, n, block):
        schedule = peacock_schedule(sawtooth_instance(n, block))
        report = verify_schedule(
            schedule, properties=(Property.RLF, Property.BLACKHOLE)
        )
        assert report.ok, [str(v) for v in report.violations]

    def test_exhaustive_agrees(self):
        schedule = peacock_schedule(reversal_instance(8))
        report = verify_exhaustive(
            schedule, properties=(Property.RLF, Property.BLACKHOLE)
        )
        assert report.ok

    def test_conservative_mode_still_safe(self):
        schedule = peacock_schedule(reversal_instance(10), exact=False)
        report = verify_schedule(
            schedule, properties=(Property.RLF, Property.BLACKHOLE)
        )
        assert report.ok

    def test_conservative_never_fewer_rounds_than_exact(self):
        for n in (6, 9, 12):
            exact = peacock_schedule(reversal_instance(n), include_cleanup=False)
            conservative = peacock_schedule(
                reversal_instance(n), include_cleanup=False, exact=False
            )
            assert conservative.n_rounds >= exact.n_rounds

    def test_metadata_records_mode(self):
        schedule = peacock_schedule(reversal_instance(6), exact=False)
        assert schedule.metadata["exact"] is False

    def test_only_switch_nodes_in_flip_rounds(self):
        problem = UpdateProblem([1, 2, 3, 4], [1, 5, 3, 2, 4])
        schedule = peacock_schedule(problem, include_cleanup=False)
        for round_nodes in schedule.rounds[1:]:
            for node in round_nodes:
                assert problem.kind(node) is UpdateKind.SWITCH
