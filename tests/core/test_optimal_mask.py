"""Equivalence suite: the bitmask exact-search engine vs the frozenset reference.

The mask engine must be a pure re-encoding of the search: for the BFS
mode it visits transitions in the same canonical order as the sets
reference, so it has to return *bit-identical* round counts **and**
schedules -- including with the monotonicity prune disabled, which pins
that the sub-/super-set verdict memo never changes a verdict.  The IDDFS
mode may pick a different optimal schedule but must agree on the round
count and produce verified-safe rounds.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.hardness import (
    crossing_instance,
    double_diamond_instance,
    hardness_profile,
    reversal_instance,
    sawtooth_instance,
    waypoint_slalom_instance,
)
from repro.core.optimal import (
    is_feasible,
    minimal_round_count,
    minimal_round_schedule,
    round_is_safe_reference,
    symmetry_classes,
)
from repro.core.problem import RuleState, UpdateKind, UpdateProblem
from repro.core.verify import Property, verify_schedule
from repro.errors import InfeasibleUpdateError, VerificationError
from repro.topology.random_graphs import random_update_instance

_RELAXED = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

ALL_PROPERTY_SETS = [
    (Property.SLF,),
    (Property.RLF,),
    (Property.BLACKHOLE,),
    (Property.SLF, Property.BLACKHOLE),
    (Property.RLF, Property.BLACKHOLE),
]
WAYPOINT_PROPERTY_SETS = ALL_PROPERTY_SETS + [
    (Property.WPE,),
    (Property.WPE, Property.BLACKHOLE),
    (Property.WPE, Property.SLF),
    (Property.WPE, Property.RLF),
]


@st.composite
def instances(draw, with_waypoint: bool = False):
    n = draw(st.integers(min_value=4, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    overlap = draw(st.floats(min_value=0.0, max_value=1.0))
    old, new, waypoint = random_update_instance(
        n, seed=seed, overlap=overlap, with_waypoint=with_waypoint
    )
    return UpdateProblem(old, new, waypoint=waypoint if with_waypoint else None)


def _schedules_or_infeasible(problem, properties, **kwargs):
    try:
        return minimal_round_schedule(problem, properties, **kwargs)
    except InfeasibleUpdateError:
        return None


class TestBitIdenticalEquivalence:
    """Mask BFS vs the frozenset reference: identical schedules, always."""

    @_RELAXED
    @given(instances())
    def test_matches_sets_reference(self, problem):
        if len(problem.required_updates) > 7:
            return
        for properties in ALL_PROPERTY_SETS:
            mask = _schedules_or_infeasible(problem, properties, engine="mask")
            reference = _schedules_or_infeasible(
                problem, properties, engine="sets", use_oracle=False
            )
            pr1 = _schedules_or_infeasible(
                problem, properties, engine="sets", use_oracle=True
            )
            if mask is None:
                assert reference is None and pr1 is None, properties
                continue
            assert reference is not None and pr1 is not None, properties
            assert mask.rounds == reference.rounds == pr1.rounds, (
                properties, problem.old_path, problem.new_path,
            )

    @_RELAXED
    @given(instances(with_waypoint=True))
    def test_matches_sets_reference_with_waypoint(self, problem):
        if len(problem.required_updates) > 7:
            return
        for properties in WAYPOINT_PROPERTY_SETS:
            mask = _schedules_or_infeasible(problem, properties, engine="mask")
            reference = _schedules_or_infeasible(
                problem, properties, engine="sets", use_oracle=False
            )
            if mask is None:
                assert reference is None, properties
                continue
            assert reference is not None, properties
            assert mask.rounds == reference.rounds, (
                properties, problem.old_path, problem.new_path,
            )

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: reversal_instance(7),
            lambda: sawtooth_instance(9, 3),
            crossing_instance,
            double_diamond_instance,
            lambda: waypoint_slalom_instance(2),
        ],
    )
    def test_hardness_families_bit_identical(self, factory):
        problem = factory()
        sets_ = (
            WAYPOINT_PROPERTY_SETS
            if problem.waypoint is not None
            else ALL_PROPERTY_SETS
        )
        for properties in sets_:
            mask = _schedules_or_infeasible(problem, properties, engine="mask")
            reference = _schedules_or_infeasible(
                problem, properties, engine="sets", use_oracle=False
            )
            if mask is None:
                assert reference is None, properties
            else:
                assert reference is not None, properties
                assert mask.rounds == reference.rounds, properties


class TestMonotonePruneInvariance:
    """The sub-/super-set verdict memo must never change a verdict."""

    @_RELAXED
    @given(instances(with_waypoint=True))
    def test_prune_off_is_bit_identical(self, problem):
        if len(problem.required_updates) > 7:
            return
        for properties in (
            (Property.RLF,),
            (Property.WPE, Property.BLACKHOLE),
        ):
            pruned = _schedules_or_infeasible(
                problem, properties, engine="mask", monotone_prune=True
            )
            bare = _schedules_or_infeasible(
                problem, properties, engine="mask", monotone_prune=False
            )
            if pruned is None:
                assert bare is None, properties
            else:
                assert bare is not None and pruned.rounds == bare.rounds, properties

    def test_prune_off_on_hardness_families(self):
        for factory in (lambda: reversal_instance(8), crossing_instance):
            problem = factory()
            sets_ = (
                [(Property.WPE,), (Property.WPE, Property.SLF)]
                if problem.waypoint is not None
                else [(Property.SLF,), (Property.RLF,)]
            )
            for properties in sets_:
                pruned = _schedules_or_infeasible(
                    problem, properties, engine="mask", monotone_prune=True
                )
                bare = _schedules_or_infeasible(
                    problem, properties, engine="mask", monotone_prune=False
                )
                if pruned is None:
                    assert bare is None
                else:
                    assert bare is not None and pruned.rounds == bare.rounds


class TestIddfs:
    def test_round_counts_match_bfs(self):
        for factory, properties in [
            (lambda: reversal_instance(7), (Property.RLF,)),
            (lambda: reversal_instance(6), (Property.SLF,)),
            (crossing_instance, (Property.WPE,)),
            (
                double_diamond_instance,
                (Property.WPE, Property.SLF, Property.BLACKHOLE),
            ),
        ]:
            problem = factory()
            bfs = minimal_round_schedule(problem, properties, search="bfs")
            iddfs = minimal_round_schedule(problem, properties, search="iddfs")
            assert iddfs.n_rounds == bfs.n_rounds
            assert verify_schedule(iddfs, properties=properties).ok

    @_RELAXED
    @given(instances())
    def test_random_counts_match_bfs(self, problem):
        if len(problem.required_updates) > 6:
            return
        for properties in ((Property.RLF,), (Property.SLF,)):
            bfs = _schedules_or_infeasible(problem, properties, search="bfs")
            iddfs = _schedules_or_infeasible(problem, properties, search="iddfs")
            if bfs is None:
                assert iddfs is None
            else:
                assert iddfs is not None and iddfs.n_rounds == bfs.n_rounds

    def test_iddfs_infeasibility_matches(self):
        problem = crossing_instance()
        with pytest.raises(InfeasibleUpdateError):
            minimal_round_schedule(
                problem, (Property.WPE, Property.SLF), search="iddfs"
            )

    def test_lifts_the_old_cap(self):
        # n=14 (13 required updates) was beyond the seed-era default cap
        # of 12; the iddfs mode settles it in well under a second
        schedule = minimal_round_schedule(
            reversal_instance(14), (Property.RLF,), search="iddfs"
        )
        assert schedule.n_rounds == 3
        assert verify_schedule(schedule, properties=(Property.RLF,)).ok

    def test_hardness_profile_uses_the_engine(self):
        profile = hardness_profile(reversal_instance(14), (Property.RLF,))
        assert profile["exact_rounds"] == 3
        assert profile["greedy_rounds"] >= profile["exact_rounds"]
        assert profile["gap"] == profile["greedy_rounds"] - 3
        clash = hardness_profile(
            crossing_instance(), (Property.WPE, Property.SLF)
        )
        assert clash["exact_rounds"] is None
        assert not clash["capped"]

    def test_hardness_profile_degrades_over_the_cap(self):
        # 30 path nodes = 28 required updates, beyond DEFAULT_MAX_NODES=24
        profile = hardness_profile(reversal_instance(30), (Property.RLF,))
        assert profile["capped"]
        assert profile["exact_rounds"] is None and profile["gap"] is None
        assert profile["greedy_rounds"] is not None


class TestSearchKnobValidation:
    def test_mask_engine_requires_oracle(self):
        with pytest.raises(VerificationError, match="oracle"):
            minimal_round_schedule(
                reversal_instance(6), (Property.SLF,),
                engine="mask", use_oracle=False,
            )

    def test_unknown_engine_and_search_rejected(self):
        problem = reversal_instance(6)
        with pytest.raises(VerificationError):
            minimal_round_schedule(problem, (Property.SLF,), engine="tarot")
        with pytest.raises(VerificationError):
            minimal_round_schedule(problem, (Property.SLF,), search="dfs?")
        with pytest.raises(VerificationError):
            minimal_round_schedule(
                problem, (Property.SLF,), engine="sets", search="iddfs"
            )


class TestKwargThreading:
    """minimal_round_count / is_feasible used to drop these kwargs."""

    def test_round_filter_threads_through_count(self):
        problem = reversal_instance(6)
        sequential_only = lambda updated, round_nodes: len(round_nodes) == 1
        free = minimal_round_count(problem, (Property.SLF,))
        forced = minimal_round_count(
            problem, (Property.SLF,), round_filter=sequential_only
        )
        assert free == 4
        assert forced == len(problem.required_updates) == 5

    def test_use_oracle_threads_through_count(self):
        problem = crossing_instance()
        assert minimal_round_count(problem, (Property.WPE,), use_oracle=False) == 3

    def test_max_rounds_threads_through_is_feasible(self):
        problem = reversal_instance(6)
        assert is_feasible(problem, (Property.SLF,))
        assert not is_feasible(problem, (Property.SLF,), max_rounds=2)

    def test_round_filter_threads_through_is_feasible(self):
        problem = crossing_instance()
        # node 4 must move before node 2 under WPE; forbid that order
        two_before_four = lambda updated, rn: not (
            4 in rn and not (2 in updated or 2 in rn)
        )
        assert is_feasible(problem, (Property.WPE,))
        assert not is_feasible(
            problem, (Property.WPE,), round_filter=two_before_four
        )


class _TwinFlows:
    """Duck-typed multi-source problem with interchangeable parallel sources.

    Three roots ``s``, ``a``, ``b`` are rewired from ``u`` onto ``v``
    while the shared tail segment ``u -> v`` reverses to ``v -> u``.
    ``a`` and ``b`` share their old/new next hops and are nobody's next
    hop, so swapping them is a problem automorphism: the exact search
    may collapse their states.  (On a single path-pair UpdateProblem
    this situation cannot arise -- every on-path node has a predecessor
    -- which is exactly why this test needs a duck.)
    """

    name = "twin-flows"
    waypoint = None

    def __init__(self):
        self.source = "s"
        self.destination = "d"
        self.old_next = {"s": "u", "a": "u", "b": "u", "u": "v", "v": "d"}
        self.new_next = {"s": "v", "a": "v", "b": "v", "u": "d", "v": "u"}
        self.forwarding_nodes = frozenset(self.old_next)
        self.nodes = self.forwarding_nodes | {"d"}
        self.required_updates = frozenset(
            node
            for node in self.forwarding_nodes
            if self.old_next[node] != self.new_next[node]
        )
        self.canonical_updates = tuple(sorted(self.required_updates))
        self.cleanup_updates = frozenset()
        self.all_updates = self.required_updates
        self.old_path = SimpleNamespace(nodes=("s", "u", "v", "d"))
        self.new_path = SimpleNamespace(nodes=("s", "a", "b", "v", "u", "d"))

    def kind(self, node):
        if node in self.required_updates:
            return UpdateKind.SWITCH
        return UpdateKind.NOOP

    def next_hop(self, node, state):
        table = self.old_next if state is RuleState.OLD else self.new_next
        return table.get(node)


class TestSymmetryReduction:
    def test_single_path_problems_have_trivial_classes(self):
        for factory in (
            lambda: reversal_instance(8),
            crossing_instance,
            double_diamond_instance,
            lambda: waypoint_slalom_instance(3),
        ):
            assert symmetry_classes(factory()) == ()

    def test_twin_flows_classes(self):
        problem = _TwinFlows()
        classes = symmetry_classes(problem)
        assert len(classes) == 1
        names = {problem.canonical_updates[bit] for bit in classes[0]}
        assert names == {"a", "b"}

    def test_twin_flows_search_matches_reference(self):
        problem = _TwinFlows()
        properties = (Property.SLF,)
        reference = minimal_round_schedule(
            problem, properties, engine="sets", use_oracle=False
        )
        mask = minimal_round_schedule(problem, properties, engine="mask")
        iddfs = minimal_round_schedule(problem, properties, search="iddfs")
        assert reference.n_rounds == mask.n_rounds == iddfs.n_rounds == 2
        # the replayed schedule must be genuinely safe round by round
        for schedule in (mask, iddfs):
            updated: set = set()
            for round_nodes in schedule.rounds:
                assert round_is_safe_reference(
                    problem, updated, set(round_nodes), properties
                )
                updated |= round_nodes
            assert updated == set(problem.required_updates)
