"""Equivalence and soundness suite for the branch-and-bound exact engine.

Three contracts are pinned here:

* **cross-engine equivalence** -- ``search="bnb"`` must agree with the
  BFS reference (and IDDFS) on optimal round counts for every feasible
  instance, and on infeasibility verdicts, randomized and on the
  hardness families;
* **certificate soundness** -- the forced-order precedence relation and
  the rounds lower bound must never contradict the exhaustive search
  (admissibility), and the polynomial infeasibility certificates must
  only fire on genuinely infeasible instances;
* **nogood correctness** -- every pattern the oracle learns must encode
  a genuine violation (checked against the from-scratch reference
  verifier over *all* matching states), and a learned table must never
  change results, including under ``round_filter``.
"""

from __future__ import annotations

import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.analysis import dependency_graph, forced_precedence_graph
from repro.core.bnb import (
    infeasibility_certificate,
    precedence_for,
    rounds_lower_bound,
)
from repro.core.hardness import (
    crossing_clash_instance,
    crossing_instance,
    reversal_instance,
    sawtooth_instance,
    waypoint_slalom_instance,
)
from repro.core.optimal import (
    is_feasible,
    minimal_round_count,
    minimal_round_schedule,
    round_is_safe_reference,
)
from repro.core.oracle import clear_registry, oracle_for
from repro.core.problem import UpdateProblem
from repro.core.verify import Property, verify_schedule
from repro.errors import ExactSearchBudgetError, InfeasibleUpdateError
from repro.topology.random_graphs import random_update_instance

_RELAXED = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

PROPERTY_SETS = [
    (Property.SLF,),
    (Property.RLF,),
    (Property.BLACKHOLE,),
    (Property.SLF, Property.BLACKHOLE),
    (Property.RLF, Property.BLACKHOLE),
]
WAYPOINT_PROPERTY_SETS = PROPERTY_SETS + [
    (Property.WPE,),
    (Property.WPE, Property.BLACKHOLE),
    (Property.WPE, Property.SLF),
    (Property.WPE, Property.RLF),
    (Property.WPE, Property.SLF, Property.BLACKHOLE),
]


@st.composite
def instances(draw, with_waypoint: bool = False):
    n = draw(st.integers(min_value=4, max_value=9))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    overlap = draw(st.floats(min_value=0.0, max_value=1.0))
    old, new, waypoint = random_update_instance(
        n, seed=seed, overlap=overlap, with_waypoint=with_waypoint
    )
    return UpdateProblem(old, new, waypoint=waypoint if with_waypoint else None)


def _rounds_or_none(problem, properties, **kwargs):
    try:
        return minimal_round_schedule(problem, properties, **kwargs).n_rounds
    except InfeasibleUpdateError:
        return None


class TestCrossEngineEquivalence:
    @_RELAXED
    @given(instances())
    def test_random_instances_match_bfs(self, problem):
        if len(problem.required_updates) > 8:
            return
        for properties in PROPERTY_SETS:
            clear_registry()
            reference = _rounds_or_none(problem, properties, search="bfs")
            clear_registry()
            bnb = _rounds_or_none(problem, properties, search="bnb")
            assert bnb == reference, (properties, problem.old_path, problem.new_path)

    @_RELAXED
    @given(instances(with_waypoint=True))
    def test_random_waypointed_instances_match_bfs(self, problem):
        if len(problem.required_updates) > 8:
            return
        for properties in WAYPOINT_PROPERTY_SETS:
            clear_registry()
            reference = _rounds_or_none(problem, properties, search="bfs")
            clear_registry()
            bnb = _rounds_or_none(problem, properties, search="bnb")
            assert bnb == reference, (properties, problem.old_path, problem.new_path)

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: reversal_instance(8),
            lambda: reversal_instance(14),
            lambda: sawtooth_instance(12, 3),
            lambda: sawtooth_instance(14, 4),
            crossing_instance,
            lambda: waypoint_slalom_instance(3),
            lambda: crossing_clash_instance(9),
            lambda: crossing_clash_instance(12),
        ],
    )
    def test_hardness_families_match_iddfs(self, factory):
        problem = factory()
        sets_ = (
            WAYPOINT_PROPERTY_SETS
            if problem.waypoint is not None
            else PROPERTY_SETS
        )
        for properties in sets_:
            iddfs = _rounds_or_none(problem, properties, search="iddfs")
            bnb = _rounds_or_none(problem, properties, search="bnb")
            assert bnb == iddfs, (problem.name, properties)

    def test_bnb_schedules_verify(self):
        for factory, properties in [
            (lambda: reversal_instance(10), (Property.SLF,)),
            (lambda: reversal_instance(12), (Property.RLF,)),
            (lambda: sawtooth_instance(12, 3), (Property.SLF,)),
            (crossing_instance, (Property.WPE,)),
        ]:
            schedule = minimal_round_schedule(
                factory(), properties, search="bnb"
            )
            assert verify_schedule(schedule, properties=properties).ok

    def test_lifts_the_cap_to_24(self):
        # 23 required updates: above both the seed cap (12) and the
        # IDDFS-era cap (18), inside the new default of 24
        schedule = minimal_round_schedule(
            reversal_instance(24), (Property.RLF,), search="bnb"
        )
        assert schedule.n_rounds == 3
        assert verify_schedule(schedule, properties=(Property.RLF,)).ok
        # forced-linear worst case: incumbent meets the chain bound
        forced = minimal_round_schedule(
            reversal_instance(24), (Property.SLF,), search="bnb"
        )
        assert forced.n_rounds == 22


class TestLowerBound:
    @_RELAXED
    @given(instances(with_waypoint=True))
    def test_admissible_on_random_instances(self, problem):
        if len(problem.required_updates) > 7:
            return
        for properties in (
            (Property.SLF,),
            (Property.WPE,),
            (Property.WPE, Property.SLF),
        ):
            clear_registry()
            optimum = _rounds_or_none(problem, properties, search="bfs")
            if optimum is None:
                continue
            bound = rounds_lower_bound(problem, properties)
            assert bound <= optimum, (properties, problem.old_path, problem.new_path)

    def test_forced_linear_chain_is_exact(self):
        for n in (6, 10, 16, 24):
            problem = reversal_instance(n)
            assert rounds_lower_bound(problem, (Property.SLF,)) == n - 2

    def test_noop_instance_is_zero(self):
        problem = UpdateProblem([1, 2, 3], [1, 2, 3])
        assert rounds_lower_bound(problem, (Property.SLF,)) == 0

    def test_infeasible_instances_raise(self):
        with pytest.raises(InfeasibleUpdateError):
            rounds_lower_bound(
                crossing_instance(), (Property.WPE, Property.SLF)
            )

    def test_forced_precedence_graph_is_sound_subset(self):
        problem = reversal_instance(6)
        cheap = forced_precedence_graph(problem, (Property.SLF,))
        exact = dependency_graph(problem, (Property.SLF,))
        assert set(cheap.edges) <= set(exact.edges)
        assert cheap.number_of_edges() > 0  # the chain is discovered

    def test_short_circuit_applies_to_every_engine(self):
        problem = crossing_instance()
        properties = (Property.WPE, Property.SLF)
        for knobs in (
            {},
            {"search": "iddfs"},
            {"search": "bnb"},
            {"max_rounds": 2},
        ):
            assert not is_feasible(problem, properties, **knobs)
            with pytest.raises(InfeasibleUpdateError):
                minimal_round_count(problem, properties, **knobs)


class TestClashFamily:
    def test_certificate_fires(self):
        for n in (9, 16, 20, 24):
            certificate = infeasibility_certificate(
                crossing_clash_instance(n), (Property.WPE, Property.SLF)
            )
            assert certificate is not None, n

    def test_certificate_matches_search_verdict(self):
        # small enough for the exhaustive engines to confirm
        for n in (9, 11):
            problem = crossing_clash_instance(n)
            assert not is_feasible(
                problem, (Property.WPE, Property.SLF), search="iddfs"
            )

    def test_feasible_under_weaker_properties(self):
        # the clash is specific to WPE+SLF: each property alone schedules
        problem = crossing_clash_instance(12)
        iddfs = minimal_round_count(problem, (Property.SLF,), search="iddfs")
        bnb = minimal_round_count(problem, (Property.SLF,), search="bnb")
        assert iddfs == bnb
        assert infeasibility_certificate(problem, (Property.SLF,)) is None

    def test_infeasibility_proof_is_fast_at_scale(self):
        # the gate behind the satellite short-circuit: the default (BFS)
        # engine would need hours on 19 updates without the certificate
        problem = crossing_clash_instance(20)
        started = time.perf_counter()
        assert not is_feasible(problem, (Property.WPE, Property.SLF))
        assert time.perf_counter() - started < 5.0


class TestAnytimeInterval:
    def test_budget_exhaustion_reports_sound_interval(self):
        problem = sawtooth_instance(16, 4)
        properties = (Property.RLF,)
        clear_registry()
        optimum = minimal_round_schedule(
            problem, properties, search="bnb"
        ).n_rounds
        clear_registry()
        with pytest.raises(ExactSearchBudgetError) as excinfo:
            minimal_round_schedule(
                problem, properties, search="bnb", node_budget=3
            )
        error = excinfo.value
        assert error.lower <= optimum
        assert error.upper is not None and optimum <= error.upper
        assert error.nodes_expanded > 0

    def test_time_limit_raises_with_interval(self):
        problem = sawtooth_instance(16, 4)
        clear_registry()
        with pytest.raises(ExactSearchBudgetError) as excinfo:
            minimal_round_schedule(
                problem, (Property.RLF,), search="bnb", time_limit_s=-1.0
            )
        assert excinfo.value.lower >= 1

    def test_matching_bounds_return_instead_of_raising(self):
        # greedy incumbent == chain bound: proven optimal with zero
        # expansions, so even a zero-ish budget succeeds
        schedule = minimal_round_schedule(
            reversal_instance(20), (Property.SLF,), search="bnb",
            node_budget=1,
        )
        assert schedule.n_rounds == 18


def _matching_queries(width, need_new, need_old):
    """All ``(updated, round)`` int pairs a nogood pattern matches."""
    for updated in range(1 << width):
        for round_mask in range(1 << width):
            if updated & round_mask:
                continue  # queries keep the two sets disjoint
            if need_new & ~(updated | round_mask):
                continue
            if need_old & updated & ~round_mask:
                continue
            yield updated, round_mask


def _learn_by_enumeration(problem, properties):
    """A freshly warmed oracle: every query of the small instance issued
    with learning on, so the table holds whatever patterns exist."""
    clear_registry()
    oracle = oracle_for(problem, properties)
    oracle.enable_nogood_learning()
    width = len(problem.canonical_updates)
    for updated in range(1 << width):
        for round_mask in range(1 << width):
            if updated & round_mask or not round_mask:
                continue
            oracle.round_is_safe(updated, round_mask)
    return oracle


class TestNogoodCorrectness:
    @pytest.mark.parametrize(
        "factory, properties",
        [
            (lambda: reversal_instance(6), (Property.SLF,)),
            (lambda: reversal_instance(6), (Property.RLF,)),
            (lambda: reversal_instance(6), (Property.BLACKHOLE, Property.SLF)),
            (crossing_instance, (Property.WPE, Property.SLF)),
            (crossing_instance, (Property.WPE, Property.BLACKHOLE)),
            (crossing_instance, (Property.WPE, Property.RLF)),
        ],
    )
    def test_learned_patterns_are_genuine_violations(self, factory, properties):
        problem = factory()
        oracle = _learn_by_enumeration(problem, properties)
        assert oracle.nogoods(), "expected the enumeration to learn patterns"
        width = len(problem.canonical_updates)
        decode = oracle.nodes_of
        for need_new, need_old in oracle.nogoods():
            for updated, round_mask in _matching_queries(
                width, need_new, need_old
            ):
                if not round_mask:
                    continue
                assert not round_is_safe_reference(
                    problem,
                    set(decode(updated)),
                    set(decode(round_mask)),
                    properties,
                ), (need_new, need_old, updated, round_mask)

    def test_search_learns_patterns_when_it_expands(self):
        # RLF sawtooth has chain bound 1 < incumbent 3, so the search
        # genuinely expands states, hits unsafe rounds, and learns (on
        # forced-linear SLF instances the bound is exact and the search
        # returns the incumbent with zero expansions -- nothing to learn)
        problem = sawtooth_instance(16, 4)
        clear_registry()
        minimal_round_schedule(problem, (Property.RLF,), search="bnb")
        oracle = oracle_for(problem, (Property.RLF,))
        assert oracle.nogoods()
        assert oracle.stats.nogood_hits > 0

    def test_no_false_prunes_under_round_filter(self):
        problem = reversal_instance(6)
        properties = (Property.SLF,)
        sequential_only = lambda updated, round_nodes: len(round_nodes) == 1
        # pollute the shared oracle's table first, then search filtered
        oracle = _learn_by_enumeration(problem, properties)
        assert oracle.nogoods()
        filtered_bnb = minimal_round_count(
            problem, properties, round_filter=sequential_only, search="bnb"
        )
        clear_registry()
        filtered_reference = minimal_round_count(
            problem, properties, round_filter=sequential_only, search="bfs"
        )
        assert filtered_bnb == filtered_reference == 5

    def test_learned_table_does_not_change_greedy_results(self):
        from repro.core.combined import combined_greedy_schedule

        problem = reversal_instance(8)
        properties = (Property.SLF,)
        clear_registry()
        baseline = combined_greedy_schedule(
            problem, properties, include_cleanup=False
        )
        oracle = _learn_by_enumeration(problem, properties)
        assert oracle.nogoods()
        warmed = combined_greedy_schedule(
            problem, properties, include_cleanup=False, oracle=oracle
        )
        assert warmed.rounds == baseline.rounds

    def test_clear_nogoods_wipes_every_oracle(self):
        from repro.core.oracle import clear_nogoods

        problem = reversal_instance(6)
        oracle = _learn_by_enumeration(problem, (Property.SLF,))
        assert oracle.nogoods()
        clear_nogoods()
        assert not oracle.nogoods()

    def test_nogood_limit_zero_disables_learning(self):
        problem = reversal_instance(6)
        clear_registry()
        minimal_round_schedule(
            problem, (Property.SLF,), search="bnb", nogood_limit=0
        )
        assert not oracle_for(problem, (Property.SLF,)).nogoods()

    def test_nogood_limit_zero_cleans_a_warm_oracle(self):
        # a nogood-free cross-check after a learning run must not keep
        # consulting (or extending) the previously learned table
        problem = sawtooth_instance(16, 4)
        properties = (Property.RLF,)
        clear_registry()
        minimal_round_schedule(problem, properties, search="bnb")
        oracle = oracle_for(problem, properties)
        assert oracle.nogoods()
        minimal_round_schedule(
            problem, properties, search="bnb", nogood_limit=0
        )
        assert not oracle.nogoods()
        assert oracle.nogood_limit == 0

    def test_bnb_only_knobs_rejected_on_other_searches(self):
        from repro.errors import VerificationError

        problem = reversal_instance(6)
        for knob in (
            {"node_budget": 10},
            {"time_limit_s": 1.0},
            {"nogood_limit": 8},
        ):
            with pytest.raises(VerificationError, match="branch-and-bound"):
                minimal_round_schedule(
                    problem, (Property.SLF,), search="iddfs", **knob
                )

    def test_certificates_short_circuit_iddfs_and_bfs_schedules(self):
        # a certified clash handed to the deepening engines must answer
        # from the certificate, not by exhausting the state space --
        # clash-24 would take tens of seconds on IDDFS otherwise
        problem = crossing_clash_instance(24)
        started = time.perf_counter()
        for search in ("bfs", "iddfs"):
            with pytest.raises(InfeasibleUpdateError):
                minimal_round_schedule(
                    problem, (Property.WPE, Property.SLF), search=search
                )
        assert time.perf_counter() - started < 2.0


class TestRegistryIntegration:
    def test_bnb_reachable_through_specs(self):
        from repro.core.api import schedule_update

        problem = reversal_instance(10)
        for spec in ("optimal:rlf?search=bnb", "optimal:rlf?engine=bnb"):
            result = schedule_update(problem, spec, include_cleanup=False)
            assert result.schedule.n_rounds == 3

    def test_large_instances_default_to_bnb(self):
        from repro.core.api import schedule_update

        # 19 required updates: above BNB_DEFAULT_THRESHOLD, inside the
        # new cap -- the plain spec must route through branch-and-bound
        result = schedule_update(
            reversal_instance(21), "optimal:rlf", include_cleanup=False
        )
        assert result.schedule.n_rounds == 3

    def test_bnb_only_params_select_the_engine(self):
        from repro.core.api import schedule_update

        result = schedule_update(
            reversal_instance(10),
            "optimal:rlf?nogood_limit=64",
            include_cleanup=False,
        )
        assert result.schedule.n_rounds == 3
