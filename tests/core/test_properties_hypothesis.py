"""Property-based tests: the algorithmic core under random instances.

These are the load-bearing correctness arguments of the reproduction:

* WayUp emits waypoint-enforcing, blackhole-free schedules on *arbitrary*
  waypointed instances;
* Peacock emits relaxed-loop-free schedules on arbitrary instances;
* the greedy strong-loop-free scheduler emits loop-free schedules;
* the polynomial verifiers agree with the exhaustive configuration oracle
  on arbitrary schedules (the union-graph theory, tested);
* schedules survive dict round-trips.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.greedy_slf import greedy_slf_schedule
from repro.core.oneshot import oneshot_schedule
from repro.core.peacock import peacock_schedule
from repro.core.problem import UpdateProblem
from repro.core.schedule import UpdateSchedule
from repro.core.verify import Property, verify_exhaustive, verify_schedule
from repro.core.wayup import wayup_schedule
from repro.errors import UpdateModelError
from repro.topology.random_graphs import (
    random_update_instance,
    random_waypointed_instance,
)

_RELAXED = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def update_instances(draw, with_waypoint: bool = False):
    """Random (old, new[, waypoint]) instances via the library generator."""
    n = draw(st.integers(min_value=4, max_value=9))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    overlap = draw(st.floats(min_value=0.0, max_value=1.0))
    old, new, waypoint = random_update_instance(
        n, seed=seed, overlap=overlap, with_waypoint=with_waypoint
    )
    return UpdateProblem(old, new, waypoint=waypoint if with_waypoint else None)


@st.composite
def random_schedules(draw):
    """A random problem with a random round partition of its updates."""
    problem = draw(update_instances(with_waypoint=draw(st.booleans())))
    nodes = sorted(problem.all_updates, key=repr)
    if not nodes:
        # force at least one change by regenerating deterministically
        problem = UpdateProblem([1, 2, 3], [1, 4, 3])
        nodes = sorted(problem.all_updates, key=repr)
    rng = random.Random(draw(st.integers(min_value=0, max_value=2**32 - 1)))
    rng.shuffle(nodes)
    k = rng.randint(1, len(nodes))
    cuts = sorted(rng.sample(range(1, len(nodes)), k - 1)) if k > 1 else []
    rounds, prev = [], 0
    for cut in [*cuts, len(nodes)]:
        rounds.append(nodes[prev:cut])
        prev = cut
    return UpdateSchedule(problem, rounds)


class TestSchedulerGuarantees:
    @_RELAXED
    @given(update_instances(with_waypoint=True))
    def test_wayup_always_wpe_and_blackhole_free(self, problem):
        try:
            schedule = wayup_schedule(problem)
        except UpdateModelError:
            return  # no rule changes: nothing to guarantee
        report = verify_schedule(
            schedule, properties=(Property.WPE, Property.BLACKHOLE)
        )
        assert report.ok, [str(v) for v in report.violations]

    @_RELAXED
    @given(update_instances(with_waypoint=True))
    def test_wayup_agrees_with_exhaustive_oracle(self, problem):
        try:
            schedule = wayup_schedule(problem)
        except UpdateModelError:
            return
        report = verify_exhaustive(
            schedule, properties=(Property.WPE, Property.BLACKHOLE)
        )
        assert report.ok, [str(v) for v in report.violations]

    @_RELAXED
    @given(update_instances())
    def test_peacock_always_relaxed_loop_free(self, problem):
        try:
            schedule = peacock_schedule(problem)
        except UpdateModelError:
            return
        report = verify_schedule(
            schedule, properties=(Property.RLF, Property.BLACKHOLE)
        )
        assert report.ok, [str(v) for v in report.violations]

    @_RELAXED
    @given(update_instances())
    def test_greedy_slf_always_strongly_loop_free(self, problem):
        try:
            schedule = greedy_slf_schedule(problem)
        except UpdateModelError:
            return
        report = verify_schedule(schedule, properties=(Property.SLF,))
        assert report.ok, [str(v) for v in report.violations]

    @_RELAXED
    @given(update_instances())
    def test_peacock_never_more_rounds_than_greedy_slf(self, problem):
        try:
            rlf = peacock_schedule(problem, include_cleanup=False)
            slf = greedy_slf_schedule(problem, include_cleanup=False)
        except UpdateModelError:
            return
        assert rlf.n_rounds <= slf.n_rounds

    @_RELAXED
    @given(update_instances(with_waypoint=True))
    def test_oneshot_schedules_everything_once(self, problem):
        try:
            schedule = oneshot_schedule(problem)
        except UpdateModelError:
            return
        assert schedule.n_rounds == 1
        assert schedule.scheduled_nodes() == problem.all_updates


class TestVerifierSoundness:
    @_RELAXED
    @given(random_schedules())
    def test_polynomial_matches_exhaustive(self, schedule):
        problem = schedule.problem
        properties = [Property.SLF, Property.RLF, Property.BLACKHOLE]
        if problem.waypoint is not None:
            properties.append(Property.WPE)
        properties = tuple(properties)
        poly = verify_schedule(schedule, properties=properties)
        brute = verify_exhaustive(schedule, properties=properties)
        for prop in properties:
            assert bool(poly.by_property(prop)) == bool(
                brute.by_property(prop)
            ), (prop, schedule.problem.old_path, schedule.problem.new_path,
                schedule.rounds)

    @_RELAXED
    @given(random_schedules())
    def test_slf_implies_rlf(self, schedule):
        slf = verify_schedule(schedule, properties=(Property.SLF,))
        if slf.ok:
            rlf = verify_schedule(schedule, properties=(Property.RLF,))
            assert rlf.ok

    @_RELAXED
    @given(random_schedules())
    def test_verification_is_deterministic(self, schedule):
        properties = (Property.RLF, Property.BLACKHOLE)
        first = verify_schedule(schedule, properties=properties)
        second = verify_schedule(schedule, properties=properties)
        assert first.ok == second.ok
        assert len(first.violations) == len(second.violations)


class TestSafetyMonotonicity:
    """Safety is antitone in the round: shrinking a safe round stays safe.

    The union graph of a sub-round is a subgraph of the full round's, so
    every witness against the sub-round works against the superset too --
    the structural fact the greedy schedulers' incremental adds rely on.
    """

    @_RELAXED
    @given(random_schedules(), st.integers(min_value=0, max_value=2**32 - 1))
    def test_subround_of_safe_round_is_safe(self, schedule, seed):
        problem = schedule.problem
        properties = [Property.SLF, Property.RLF, Property.BLACKHOLE]
        if problem.waypoint is not None:
            properties.append(Property.WPE)
        properties = tuple(properties)
        from repro.core.optimal import round_is_safe

        rng = random.Random(seed)
        updated: set = set()
        for round_nodes in schedule.rounds:
            nodes = set(round_nodes)
            if round_is_safe(problem, updated, nodes, properties) and len(nodes) > 1:
                subset = set(rng.sample(sorted(nodes, key=repr),
                                        rng.randint(1, len(nodes) - 1)))
                assert round_is_safe(problem, updated, subset, properties), (
                    problem.old_path, problem.new_path, updated, nodes, subset
                )
            updated |= nodes


class TestRoundTrips:
    @_RELAXED
    @given(random_schedules())
    def test_schedule_dict_roundtrip(self, schedule):
        back = UpdateSchedule.from_dict(schedule.problem, schedule.to_dict())
        assert back.rounds == schedule.rounds

    @_RELAXED
    @given(update_instances(with_waypoint=True))
    def test_problem_dict_roundtrip(self, problem):
        back = UpdateProblem.from_dict(problem.to_dict())
        assert back.old_path == problem.old_path
        assert back.new_path == problem.new_path
        assert back.waypoint == problem.waypoint


class TestWaypointSemantics:
    @_RELAXED
    @given(update_instances(with_waypoint=True))
    def test_initial_and_final_configs_enforce_waypoint(self, problem):
        from repro.core.problem import Configuration, RuleState

        old_walk = Configuration(problem=problem).walk_from_source()
        assert old_walk.delivered and old_walk.traversed(problem.waypoint)
        new_states = {
            node: RuleState.NEW
            for node in problem.forwarding_nodes
        }
        new_walk = Configuration(problem=problem, states=new_states).walk_from_source()
        assert new_walk.delivered and new_walk.traversed(problem.waypoint)
