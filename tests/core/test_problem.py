"""Unit tests for the update-problem model."""

import pytest

from repro.core.problem import (
    Configuration,
    RuleState,
    UpdateKind,
    UpdateProblem,
    trace_walk,
)
from repro.errors import UpdateModelError


class TestValidation:
    def test_sources_must_agree(self):
        with pytest.raises(UpdateModelError, match="source"):
            UpdateProblem([1, 2, 3], [2, 1, 3])

    def test_destinations_must_agree(self):
        with pytest.raises(UpdateModelError, match="destination"):
            UpdateProblem([1, 2, 3], [1, 2, 4])

    def test_waypoint_must_be_on_both_paths(self):
        with pytest.raises(UpdateModelError, match="waypoint"):
            UpdateProblem([1, 2, 3], [1, 4, 3], waypoint=2)

    def test_waypoint_cannot_be_endpoint(self):
        with pytest.raises(UpdateModelError, match="interior"):
            UpdateProblem([1, 2, 3], [1, 2, 3], waypoint=1)

    def test_valid_waypoint_accepted(self):
        problem = UpdateProblem([1, 2, 3], [1, 2, 3], waypoint=2)
        assert problem.waypoint == 2


class TestClassification:
    @pytest.fixture
    def problem(self):
        # old: 1-2-3-4-5   new: 1-6-3-2-5 (2 crosses, 4 old-only, 6 fresh)
        return UpdateProblem([1, 2, 3, 4, 5], [1, 6, 3, 2, 5], waypoint=3)

    def test_install(self, problem):
        assert problem.kind(6) is UpdateKind.INSTALL

    def test_switch(self, problem):
        assert problem.kind(1) is UpdateKind.SWITCH
        assert problem.kind(2) is UpdateKind.SWITCH
        assert problem.kind(3) is UpdateKind.SWITCH

    def test_delete(self, problem):
        assert problem.kind(4) is UpdateKind.DELETE

    def test_destination_is_noop(self, problem):
        assert problem.kind(5) is UpdateKind.NOOP

    def test_unknown_node_rejected(self, problem):
        with pytest.raises(UpdateModelError):
            problem.kind(99)

    def test_noop_when_next_hop_unchanged(self):
        problem = UpdateProblem([1, 2, 3, 4], [1, 2, 3, 4])
        assert problem.kind(2) is UpdateKind.NOOP

    def test_required_updates(self, problem):
        assert problem.required_updates == {1, 2, 3, 6}

    def test_cleanup_updates(self, problem):
        assert problem.cleanup_updates == {4}

    def test_all_updates(self, problem):
        assert problem.all_updates == {1, 2, 3, 4, 6}


class TestForwarding:
    def test_old_state_follows_old_path(self):
        problem = UpdateProblem([1, 2, 3], [1, 4, 3])
        assert problem.next_hop(1, RuleState.OLD) == 2
        assert problem.next_hop(2, RuleState.OLD) == 3

    def test_new_state_follows_new_path(self):
        problem = UpdateProblem([1, 2, 3], [1, 4, 3])
        assert problem.next_hop(1, RuleState.NEW) == 4
        assert problem.next_hop(4, RuleState.NEW) == 3

    def test_new_only_node_drops_in_old_state(self):
        problem = UpdateProblem([1, 2, 3], [1, 4, 3])
        assert problem.next_hop(4, RuleState.OLD) is None

    def test_old_only_node_drops_in_new_state(self):
        problem = UpdateProblem([1, 2, 3], [1, 4, 3])
        assert problem.next_hop(2, RuleState.NEW) is None

    def test_destination_never_forwards(self):
        problem = UpdateProblem([1, 2, 3], [1, 4, 3])
        with pytest.raises(UpdateModelError):
            problem.next_hop(3, RuleState.OLD)


class TestWaypointClasses:
    def test_partition(self):
        problem = UpdateProblem([1, 2, 3, 4, 5], [1, 4, 3, 2, 5], waypoint=3)
        classes = problem.waypoint_classes
        assert classes.old_pre == {1, 2}
        assert classes.old_suf == {4, 5}
        assert classes.new_pre == {1, 4}
        assert classes.new_suf == {2, 5}

    def test_requires_waypoint(self):
        problem = UpdateProblem([1, 2, 3], [1, 4, 3])
        with pytest.raises(UpdateModelError):
            _ = problem.waypoint_classes


class TestWalks:
    def test_all_old_walk_follows_old_path(self):
        problem = UpdateProblem([1, 2, 3, 4], [1, 3, 2, 4])
        config = Configuration(problem=problem, states={})
        walk = config.walk_from_source()
        assert walk.delivered
        assert walk.visited == (1, 2, 3, 4)

    def test_all_new_walk_follows_new_path(self):
        problem = UpdateProblem([1, 2, 3, 4], [1, 3, 2, 4])
        states = {n: RuleState.NEW for n in (1, 2, 3)}
        walk = Configuration(problem=problem, states=states).walk_from_source()
        assert walk.delivered
        assert walk.visited == (1, 3, 2, 4)

    def test_mixed_walk_can_loop(self):
        problem = UpdateProblem([1, 2, 3, 4], [1, 3, 2, 4])
        # 1 new -> 3; 3 old -> 4? no: old next of 3 is 4... craft loop:
        # 1->3 (new), 3->2 (new), 2->3 (old): revisit 3
        states = {1: RuleState.NEW, 3: RuleState.NEW}
        walk = Configuration(problem=problem, states=states).walk_from_source()
        assert walk.looped
        assert walk.visited[-1] == walk.visited[1]

    def test_walk_detects_drop(self):
        problem = UpdateProblem([1, 2, 3], [1, 4, 3])
        states = {1: RuleState.NEW}  # 4 still has no rule
        walk = Configuration(problem=problem, states=states).walk_from_source()
        assert walk.dropped
        assert walk.visited == (1, 4)

    def test_traversed(self):
        problem = UpdateProblem([1, 2, 3, 4], [1, 3, 2, 4])
        walk = Configuration(problem=problem).walk_from_source()
        assert walk.traversed(2)
        assert not walk.traversed(99)

    def test_trace_walk_step_limit(self):
        problem = UpdateProblem([1, 2, 3], [1, 2, 3])
        with pytest.raises(UpdateModelError):
            trace_walk(problem, lambda n: 1 if n == 2 else 2, max_steps=1)


class TestSerialization:
    def test_roundtrip(self):
        problem = UpdateProblem([1, 2, 3], [1, 4, 3], waypoint=None, name="x")
        data = problem.to_dict()
        back = UpdateProblem.from_dict(data)
        assert back.old_path == problem.old_path
        assert back.new_path == problem.new_path
        assert back.waypoint is None

    def test_waypoint_survives(self):
        problem = UpdateProblem([1, 2, 3], [1, 2, 3], waypoint=2)
        assert UpdateProblem.from_dict(problem.to_dict()).waypoint == 2

    def test_missing_field_raises(self):
        with pytest.raises(UpdateModelError, match="oldpath"):
            UpdateProblem.from_dict({"newpath": [1, 2]})
