"""Registry + envelope parity: every scheduler, every layer, one surface.

The contract pinned here:

* every registered scheduler runs on a reference instance set through the
  ``ScheduleRequest`` → ``ScheduleResult`` envelope;
* ``include_cleanup`` is honored by every scheduler;
* the guarantee a scheduler declares (or realizes) actually holds --
  ``verify_schedule`` passes on the produced schedule;
* CLI, REST, and campaign all resolve the *identical* scheduler list
  (the old per-layer name→callable dicts are gone);
* aliases and parameterized specs normalize to canonical names.
"""

import pytest

from repro.core import (
    Property,
    ScheduleRequest,
    SCHEDULER_REGISTRY,
    TwoPhaseSchedule,
    UpdateProblem,
    execute_request,
    schedule_update,
    scheduler_names,
    verify_schedule,
)
from repro.core.hardness import reversal_instance, waypoint_slalom_instance
from repro.core.registry import (
    SchedulerDefinition,
    SchedulerRun,
    register_scheduler,
    resolve_scheduler,
    split_spec,
)
from repro.errors import (
    InfeasibleUpdateError,
    SchedulerSpecError,
    UpdateModelError,
)


def reference_problems():
    """Small instances covering waypointed / plain / cleanup-heavy shapes."""
    return [
        reversal_instance(6),
        waypoint_slalom_instance(2),
        UpdateProblem([1, 2, 3, 4, 5], [1, 6, 3, 7, 5], waypoint=3),
        UpdateProblem([1, 2, 3, 4], [1, 5, 6, 4]),
    ]


def sweepable_specs():
    """Every plain registry name plus parameterized samples."""
    return SCHEDULER_REGISTRY.plain_names() + [
        "combined:rlf+blackhole",
        "combined:slf+blackhole",
        "optimal:slf",
        "optimal:rlf?search=bfs",
    ]


class TestRegistryParity:
    @pytest.mark.parametrize("spec", sweepable_specs())
    def test_every_scheduler_runs_and_keeps_its_guarantee(self, spec):
        scheduler = resolve_scheduler(spec)
        ran = 0
        for problem in reference_problems():
            if scheduler.requires_waypoint and problem.waypoint is None:
                with pytest.raises(UpdateModelError):
                    schedule_update(problem, spec)
                continue
            try:
                result = execute_request(
                    ScheduleRequest(problem=problem, scheduler=spec, verify=True)
                )
            except InfeasibleUpdateError:
                continue  # a legitimate outcome for combined property sets
            ran += 1
            assert result.scheduler == scheduler.name
            assert result.schedule.n_rounds >= 1
            assert result.schedule.total_updates() >= 1
            # the realized guarantee must actually hold
            if result.guarantee and not isinstance(
                result.schedule, TwoPhaseSchedule
            ):
                assert verify_schedule(
                    result.schedule, properties=result.guarantee
                ).ok, spec
            if result.guarantee:
                assert result.verified is True, spec
        assert ran > 0, f"{spec} never ran on the reference set"

    @pytest.mark.parametrize("spec", sweepable_specs())
    def test_include_cleanup_is_honored(self, spec):
        problem = UpdateProblem([1, 2, 3, 4, 5], [1, 6, 3, 7, 5], waypoint=3)
        assert problem.cleanup_updates, "reference problem must need cleanup"
        scheduler = resolve_scheduler(spec)
        if scheduler.requires_waypoint and problem.waypoint is None:
            pytest.skip("needs waypoint")
        try:
            kept = schedule_update(problem, spec, include_cleanup=True)
            dropped = schedule_update(problem, spec, include_cleanup=False)
        except InfeasibleUpdateError:
            pytest.skip("infeasible on the cleanup reference instance")
        assert kept.schedule.includes_cleanup()
        assert not dropped.schedule.includes_cleanup()

    def test_layers_resolve_identical_scheduler_lists(self):
        from repro.campaign.schedulers import resolve as campaign_resolve
        from repro.cli.main import available_schedulers
        from repro.core.registry import REGISTRY

        names = scheduler_names()
        # CLI
        assert available_schedulers() == names
        # campaign: every registry spec resolves to the same object
        for spec in sweepable_specs():
            assert campaign_resolve(spec) is resolve_scheduler(spec)
        # REST: capability listing covers exactly the registry
        assert [row["name"] for row in REGISTRY.describe()] == names

    def test_aliases_resolve_to_one_canonical_spelling(self):
        assert resolve_scheduler("greedy_slf") is resolve_scheduler("greedy-slf")
        assert resolve_scheduler("two_phase") is resolve_scheduler("two-phase")
        assert resolve_scheduler("twophase").name == "two-phase"
        assert resolve_scheduler("minimal:slf").name == "optimal:slf"

    def test_reference_engine_specs_stay_reachable(self):
        # the documented PR 1 / PR 3 reference modes must not be broken
        # by the iddfs default
        problem = reversal_instance(6)
        baseline = schedule_update(problem, "optimal:rlf", include_cleanup=False)
        for spec in ("optimal:rlf?engine=sets", "optimal:rlf?use_oracle=false",
                     "optimal:rlf?search=bfs"):
            result = schedule_update(problem, spec, include_cleanup=False)
            assert result.n_rounds == baseline.n_rounds, spec

    def test_property_lists_normalize_to_one_spelling(self):
        a = resolve_scheduler("combined:rlf+wpe")
        b = resolve_scheduler("combined:wpe+rlf")
        c = resolve_scheduler("combined:wpe+wpe+rlf")
        assert a is b is c
        assert a.name == "combined:wpe+rlf"
        assert a.guarantee == (Property.WPE, Property.RLF)

    def test_canonical_name_normalizes_params(self):
        scheduler = resolve_scheduler("optimal:slf?use_oracle=true&search=bfs")
        assert scheduler.name == "optimal:slf?search=bfs&use_oracle=true"
        assert scheduler.params == {"search": "bfs", "use_oracle": True}

    def test_spec_grammar_errors(self):
        with pytest.raises(SchedulerSpecError):
            resolve_scheduler("no-such-scheduler")
        with pytest.raises(SchedulerSpecError):
            resolve_scheduler("optimal:")  # empty property list
        with pytest.raises(SchedulerSpecError):
            resolve_scheduler("optimal:bogus")
        with pytest.raises(SchedulerSpecError):
            resolve_scheduler("peacock:slf")  # not parameterized
        with pytest.raises(SchedulerSpecError):
            resolve_scheduler("optimal:slf?nonsense=1")  # unknown param
        with pytest.raises(SchedulerSpecError):
            resolve_scheduler("optimal:slf?search")  # not key=value

    def test_split_spec_coercion(self):
        name, props, params = split_spec("optimal:slf+rlf?a=true&b=3&c=x")
        assert name == "optimal" and props == "slf+rlf"
        assert params == {"a": True, "b": 3, "c": "x"}


class TestEnvelope:
    def test_result_carries_provenance(self):
        result = schedule_update(reversal_instance(8), "greedy-slf")
        assert result.wall_ms >= 0.0
        assert result.oracle_stats.get("applies", 0) > 0

    def test_cache_key_is_canonical_and_hashable(self):
        problem = reversal_instance(6)
        a = ScheduleRequest(problem=problem, scheduler="greedy_slf")
        b = ScheduleRequest(problem=problem, scheduler="greedy-slf")
        assert a.cache_key() == b.cache_key()
        assert hash(a.cache_key())
        c = ScheduleRequest(problem=problem, scheduler="greedy-slf",
                            include_cleanup=False)
        assert c.cache_key() != a.cache_key()

    def test_explicit_properties_override_guarantee(self):
        problem = reversal_instance(6)
        result = schedule_update(
            problem, "oneshot", verify=True,
            properties=(Property.RLF, Property.BLACKHOLE),
        )
        assert result.verified is False
        assert result.report.violations

    def test_guarantee_free_scheduler_verifies_nothing(self):
        result = schedule_update(reversal_instance(6), "oneshot", verify=True)
        assert result.report is None and result.verified is None

    def test_timeout_surfaces_as_schedule_timeout(self):
        from repro.errors import ScheduleTimeoutError

        with pytest.raises(ScheduleTimeoutError):
            schedule_update(
                reversal_instance(12), "optimal:rlf?search=bfs",
                timeout_s=0.001,
            )

    def test_two_phase_rides_the_envelope(self):
        problem = UpdateProblem([1, 2, 3, 4, 5], [1, 6, 3, 7, 5], waypoint=3)
        result = schedule_update(problem, "two-phase", verify=True)
        assert isinstance(result.schedule, TwoPhaseSchedule)
        assert result.verified is True
        assert Property.WPE in result.guarantee
        data = result.to_dict()
        assert data["schedule"]["algorithm"] == "two-phase"
        assert data["rounds"] == result.schedule.n_rounds
        # and campaigns can sweep it: the batch merge surface is there
        assert result.schedule.total_updates() == sum(
            len(phase) for phase in result.schedule.rounds
        )


class TestThirdPartyRegistration:
    def test_register_function_and_teardown(self):
        from repro.core.schedule import sequential_schedule

        def reverse_sequential(problem, include_cleanup=True):
            order = [
                node
                for node in sorted(problem.all_updates, key=repr, reverse=True)
                if include_cleanup or node in problem.required_updates
            ]
            return sequential_schedule(problem, order=order)

        register_scheduler(
            "reverse-sequential",
            reverse_sequential,
            aliases=("rseq",),
            description="docs example",
        )
        try:
            assert "reverse-sequential" in scheduler_names()
            result = schedule_update(reversal_instance(6), "rseq")
            assert result.scheduler == "reverse-sequential"
            # duplicate registration is refused
            with pytest.raises(SchedulerSpecError):
                register_scheduler("reverse-sequential", reverse_sequential)
        finally:
            SCHEDULER_REGISTRY.unregister("reverse-sequential")
        assert "reverse-sequential" not in scheduler_names()

    def test_register_invoke_form(self):
        from repro.core.oneshot import oneshot_schedule

        def invoke(problem, cleanup, oracle, properties, params):
            return SchedulerRun(
                oneshot_schedule(problem, include_cleanup=cleanup), "inv", ()
            )

        definition = SchedulerDefinition("inv-oneshot", invoke)
        SCHEDULER_REGISTRY.register(definition)
        try:
            result = schedule_update(reversal_instance(6), "inv-oneshot")
            assert result.detail == "inv"
        finally:
            SCHEDULER_REGISTRY.unregister("inv-oneshot")
