"""Tests for the nesting-safe SIGALRM wall-clock limiter."""

import signal
import threading
import time

import pytest

from repro.core.api import time_limit
from repro.errors import ScheduleTimeoutError


def _spin(seconds: float) -> None:
    """Busy-wait so the alarm has something to interrupt."""
    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        pass


def _alarm_cleared() -> bool:
    return signal.getitimer(signal.ITIMER_REAL)[0] == 0.0


class TestTimeLimit:
    def test_expiry_raises(self):
        with pytest.raises(ScheduleTimeoutError):
            with time_limit(0.05):
                _spin(5.0)
        assert _alarm_cleared()

    def test_none_is_a_noop(self):
        with time_limit(None):
            pass
        assert _alarm_cleared()

    def test_completion_disarms(self):
        with time_limit(5.0):
            pass
        assert _alarm_cleared()


class TestNesting:
    def test_inner_expiry_keeps_outer_armed(self):
        with time_limit(30.0):
            with pytest.raises(ScheduleTimeoutError) as excinfo:
                with time_limit(0.05):
                    _spin(5.0)
            assert "0.05" in str(excinfo.value)
            # the outer limit survived the inner expiry: its alarm is
            # re-armed with (close to) its remaining budget
            remaining = signal.getitimer(signal.ITIMER_REAL)[0]
            assert 25.0 < remaining <= 30.0
        assert _alarm_cleared()

    def test_outer_deadline_wins_inside_inner(self):
        # the outer budget expires while the inner (longer) one is
        # active; the inner arming must chain to the outer handler
        with pytest.raises(ScheduleTimeoutError) as excinfo:
            with time_limit(0.08):
                with time_limit(30.0):
                    _spin(5.0)
        assert "0.08" in str(excinfo.value)
        assert _alarm_cleared()

    def test_inner_completion_restores_outer_remaining(self):
        with time_limit(30.0):
            before = signal.getitimer(signal.ITIMER_REAL)[0]
            with time_limit(1.0):
                pass
            after = signal.getitimer(signal.ITIMER_REAL)[0]
            assert 25.0 < after <= before
            handler = signal.getsignal(signal.SIGALRM)
            assert callable(handler)
        assert _alarm_cleared()

    def test_outer_still_fires_after_inner_ran(self):
        with pytest.raises(ScheduleTimeoutError) as excinfo:
            with time_limit(0.1):
                with time_limit(0.02):
                    pass  # completes well inside both budgets
                _spin(5.0)  # now the outer limit must still be live
        assert "0.1" in str(excinfo.value)
        assert _alarm_cleared()

    def test_two_level_nesting_both_complete(self):
        with time_limit(10.0):
            with time_limit(5.0):
                with time_limit(2.0):
                    pass
        assert _alarm_cleared()


class TestThreadSafety:
    def test_skipped_off_main_thread(self):
        # SIGALRM only works on the main thread; elsewhere the limit is
        # silently skipped rather than crashing or leaking alarms
        outcome = {}

        def body():
            try:
                with time_limit(0.01):
                    _spin(0.1)
                outcome["ok"] = True
            except Exception as exc:  # pragma: no cover - failure path
                outcome["error"] = exc

        thread = threading.Thread(target=body)
        thread.start()
        thread.join()
        assert outcome.get("ok") is True
