"""Property test: incremental oracle deltas vs the from-scratch reference.

The online churn controller keeps one long-lived :class:`SafetyOracle`
per update and mutates it through ``apply`` / ``revert`` / ``commit`` /
``commit_round`` / ``try_apply`` / ``reset`` as arrivals, cancellations
and link failures interleave.  This test hammers random interleavings of
exactly those deltas on random instances and, after every operation,
cross-checks the oracle's incremental verdict and node bookkeeping
against :func:`round_is_safe_reference`, which rebuilds the union graph
from scratch.  A divergence here means the incremental maintenance lost
track of the graph somewhere along a delta sequence.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.oracle import SafetyOracle
from repro.core.optimal import round_is_safe_reference
from repro.core.problem import UpdateProblem
from repro.core.verify import Property
from repro.topology.random_graphs import random_update_instance

_RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_OPS = ("apply", "revert", "commit", "try_apply", "commit_round", "reset", "query")


@st.composite
def oracle_scripts(draw):
    """A random instance plus a random delta/checkpoint script over it."""
    with_waypoint = draw(st.booleans())
    n = draw(st.integers(min_value=4, max_value=9))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    overlap = draw(st.floats(min_value=0.0, max_value=1.0))
    old, new, waypoint = random_update_instance(
        n, seed=seed, overlap=overlap, with_waypoint=with_waypoint
    )
    problem = UpdateProblem(old, new, waypoint=waypoint if with_waypoint else None)
    nodes = sorted(problem.all_updates, key=repr)
    if not nodes:
        problem = UpdateProblem([1, 2, 3], [1, 4, 3])
        nodes = sorted(problem.all_updates, key=repr)
    properties = (Property.BLACKHOLE, draw(st.sampled_from((Property.RLF, Property.SLF))))
    if problem.waypoint is not None:
        properties += (Property.WPE,)
    width = len(nodes)
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(_OPS),
                st.integers(min_value=0, max_value=2**width - 1),
                st.integers(min_value=0, max_value=2**width - 1),
            ),
            min_size=1,
            max_size=30,
        )
    )
    return problem, nodes, properties, ops


def _subset(nodes, mask):
    return {node for bit, node in enumerate(nodes) if mask & (1 << bit)}


class TestOracleInterleaving:
    @_RELAXED
    @given(oracle_scripts())
    def test_random_delta_sequences_match_reference(self, script):
        problem, nodes, properties, ops = script
        oracle = SafetyOracle(problem, properties)
        updated: set = set()
        in_flight: set = set()

        for name, a, b in ops:
            node = nodes[a % len(nodes)]
            if name == "apply":
                oracle.apply(node)
                updated.discard(node)
                in_flight.add(node)
            elif name == "revert":
                oracle.revert(node)
                updated.discard(node)
                in_flight.discard(node)
            elif name == "commit":
                oracle.commit(node)
                in_flight.discard(node)
                updated.add(node)
            elif name == "commit_round":
                oracle.commit_round()
                updated |= in_flight
                in_flight.clear()
            elif name == "try_apply":
                # with no learned nogoods this is apply + check (+ revert)
                expect = round_is_safe_reference(
                    problem,
                    updated - {node},
                    in_flight | {node},
                    properties,
                )
                verdict = oracle.try_apply(node)
                assert verdict == expect
                updated.discard(node)
                if verdict:
                    in_flight.add(node)
                else:
                    in_flight.discard(node)
            elif name == "reset":
                updated = _subset(nodes, a)
                in_flight = _subset(nodes, b) - updated
                oracle.reset(updated, in_flight)
            elif name == "query":
                query_updated = _subset(nodes, a)
                query_round = _subset(nodes, b) - query_updated
                verdict = oracle.round_is_safe(query_updated, query_round)
                assert verdict == round_is_safe_reference(
                    problem, query_updated, query_round, properties
                )
                # round_is_safe morphs the live graph; put the round back
                oracle.reset(updated, in_flight)

            assert oracle.updated_nodes() == frozenset(updated)
            assert oracle.in_flight_nodes() == frozenset(in_flight)
            assert oracle.current_round_safe() == round_is_safe_reference(
                problem, updated, in_flight, properties
            )
