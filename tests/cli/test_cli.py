"""Tests for the command-line interface."""

import json

import pytest

from repro.cli.main import build_parser, main


class TestParser:
    def test_subcommands_registered(self):
        parser = build_parser()
        for command in ("figure1", "schedule", "rounds", "topo", "serve"):
            args = parser.parse_args([command] + (
                ["--old", "1,2", "--new", "1,2"] if command == "schedule" else []
            ))
            assert args.command == command


class TestScheduleCommand:
    def test_wayup_verified(self, capsys):
        code = main([
            "schedule", "--old", "1,2,3,4,5", "--new", "1,4,3,2,5",
            "--wp", "3", "--algorithm", "wayup",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "verified: True" in out
        assert "post-waypoint" in out

    def test_oneshot_unverified_exit_code(self, capsys):
        code = main([
            "schedule", "--old", "1,2,3,4,5", "--new", "1,4,3,2,5",
            "--wp", "3", "--algorithm", "oneshot",
        ])
        assert code == 1
        assert "waypoint" in capsys.readouterr().out

    def test_json_output(self, capsys):
        code = main([
            "schedule", "--old", "1,2,3", "--new", "1,4,3",
            "--algorithm", "peacock", "--json",
        ])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        assert data["schedule"]["algorithm"] == "peacock"

    def test_explicit_properties(self, capsys):
        code = main([
            "schedule", "--old", "1,2,3,4", "--new", "1,3,2,4",
            "--algorithm", "greedy-slf", "--properties", "slf,rlf",
        ])
        assert code == 0

    def test_bad_path_rejected(self):
        with pytest.raises(SystemExit):
            main(["schedule", "--old", "1,x", "--new", "1,2"])


class TestRoundsCommand:
    def test_reversal_table(self, capsys):
        code = main(["rounds", "--family", "reversal",
                     "--n-min", "6", "--n-max", "10", "--step", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "peacock" in out and "greedy" in out
        # greedy needs n-2 rounds at n=10
        assert "| 8" in out

    def test_slalom_includes_wayup(self, capsys):
        code = main(["rounds", "--family", "slalom",
                     "--n-min", "7", "--n-max", "9", "--step", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "wayup" in out


class TestTopoCommand:
    def test_writes_json(self, tmp_path, capsys):
        out_file = tmp_path / "topo.json"
        code = main(["topo", "--kind", "figure1", "--hosts", "--out", str(out_file)])
        assert code == 0
        data = json.loads(out_file.read_text())
        assert len([n for n in data["nodes"] if n["kind"] == "switch"]) == 12


class TestFigure1Command:
    def test_json_run(self, capsys):
        code = main(["figure1", "--algorithm", "wayup", "--seed", "1", "--json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["violations"] == 0
        assert data["rounds"] == 5

    def test_error_path(self, capsys):
        code = main(["figure1", "--algorithm", "wayup",
                     "--channel-latency", "warp:1"])
        assert code == 2
        assert "error" in capsys.readouterr().err
