"""Tests for the command-line interface."""

import json

import pytest

from repro.cli.main import build_parser, main


class TestParser:
    def test_subcommands_registered(self):
        parser = build_parser()
        for command in ("figure1", "schedule", "rounds", "topo", "serve"):
            args = parser.parse_args([command] + (
                ["--old", "1,2", "--new", "1,2"] if command == "schedule" else []
            ))
            assert args.command == command

    def test_campaign_subcommands_registered(self):
        parser = build_parser()
        for sub, extra in (("run", ["spec.json"]), ("status", ["x"]),
                           ("report", ["x"]), ("serve", ["spec.json"]),
                           ("work", ["http://127.0.0.1:1"])):
            args = parser.parse_args(["campaign", sub, *extra])
            assert args.command == "campaign"
            assert args.campaign_command == sub


class TestScheduleCommand:
    def test_wayup_verified(self, capsys):
        code = main([
            "schedule", "--old", "1,2,3,4,5", "--new", "1,4,3,2,5",
            "--wp", "3", "--algorithm", "wayup",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "verified: True" in out
        assert "post-waypoint" in out

    def test_oneshot_unverified_exit_code(self, capsys):
        code = main([
            "schedule", "--old", "1,2,3,4,5", "--new", "1,4,3,2,5",
            "--wp", "3", "--algorithm", "oneshot",
        ])
        assert code == 1
        assert "waypoint" in capsys.readouterr().out

    def test_json_output(self, capsys):
        code = main([
            "schedule", "--old", "1,2,3", "--new", "1,4,3",
            "--algorithm", "peacock", "--json",
        ])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        assert data["schedule"]["algorithm"] == "peacock"

    def test_explicit_properties(self, capsys):
        code = main([
            "schedule", "--old", "1,2,3,4", "--new", "1,3,2,4",
            "--algorithm", "greedy-slf", "--properties", "slf,rlf",
        ])
        assert code == 0

    def test_bad_path_rejected(self):
        with pytest.raises(SystemExit):
            main(["schedule", "--old", "1,x", "--new", "1,2"])

    def test_generated_family_instance(self, capsys):
        code = main([
            "schedule", "--family", "slalom", "--n", "3",
            "--algorithm", "wayup", "--json",
        ])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True

    def test_generated_random_family_seed_deterministic(self, capsys):
        outputs = []
        for _ in range(2):
            code = main([
                "schedule", "--family", "random-update", "--n", "10",
                "--seed", "7", "--algorithm", "peacock", "--json",
            ])
            assert code == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_alias_resolves_to_canonical_name(self, capsys):
        code = main([
            "schedule", "--old", "1,2,3,4", "--new", "1,3,2,4",
            "--algorithm", "greedy_slf", "--json",
        ])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["scheduler"] == "greedy-slf"
        assert data["schedule"]["algorithm"] == "greedy-slf"

    def test_parameterized_registry_spec_accepted(self, capsys):
        code = main([
            "schedule", "--old", "1,2,3,4", "--new", "1,3,2,4",
            "--algorithm", "combined:slf+blackhole", "--json",
        ])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["scheduler"] == "combined:slf+blackhole"

    def test_two_phase_through_registry(self, capsys):
        code = main([
            "schedule", "--old", "1,2,3,4,5", "--new", "1,4,3,2,5",
            "--wp", "3", "--algorithm", "two-phase",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "flip-ingress" in out
        assert "verified: True" in out

    def test_unknown_scheduler_is_a_clean_error(self, capsys):
        code = main([
            "schedule", "--old", "1,2,3", "--new", "1,4,3",
            "--algorithm", "magic",
        ])
        assert code == 2
        assert "unknown scheduler" in capsys.readouterr().err

    def test_unknown_property_is_a_clean_error(self, capsys):
        code = main([
            "schedule", "--old", "1,2,3", "--new", "1,4,3",
            "--algorithm", "peacock", "--properties", "bogus",
        ])
        assert code == 2
        assert "unknown properties" in capsys.readouterr().err

    def test_family_and_paths_conflict(self):
        with pytest.raises(SystemExit):
            main(["schedule", "--family", "reversal", "--old", "1,2",
                  "--new", "1,2"])
        with pytest.raises(SystemExit):
            main(["schedule"])


class TestRoundsCommand:
    def test_reversal_table(self, capsys):
        code = main(["rounds", "--family", "reversal",
                     "--n-min", "6", "--n-max", "10", "--step", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "peacock" in out and "greedy" in out
        # greedy needs n-2 rounds at n=10
        assert "| 8" in out

    def test_slalom_includes_wayup(self, capsys):
        code = main(["rounds", "--family", "slalom",
                     "--n-min", "7", "--n-max", "9", "--step", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "wayup" in out

    def test_random_family_json_verifies(self, capsys):
        code = main(["rounds", "--family", "random-wp", "--seed", "3",
                     "--n-min", "8", "--n-max", "12", "--step", "2", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        records = json.loads(out)
        assert len(records) == 3
        assert all(record["ok"] for record in records)
        assert all("wayup" in record for record in records)
        # records key on the canonical registry spelling
        assert all("greedy-slf" in record for record in records)
        assert all("greedy_slf" not in record for record in records)

    def test_random_family_seed_changes_table(self, capsys):
        outputs = []
        for seed in ("1", "2"):
            assert main(["rounds", "--family", "random", "--seed", seed,
                         "--n-min", "10", "--n-max", "14", "--step", "2",
                         "--json"]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] != outputs[1]


CAMPAIGN_SPEC = {
    "name": "cli-mini",
    "seed": 2,
    "families": [
        {"family": "reversal", "sizes": [6, 8]},
        {"family": "random-update", "sizes": [8], "repeats": 2},
    ],
    "schedulers": ["peacock", "oneshot"],
}


class TestCampaignCommand:
    @pytest.fixture
    def spec_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(CAMPAIGN_SPEC))
        return path

    def test_run_status_report(self, tmp_path, spec_file, capsys):
        root = str(tmp_path / "runs")
        code = main(["campaign", "run", str(spec_file),
                     "-j", "2", "--root", root, "--json"])
        out = capsys.readouterr().out
        assert code == 0
        status = json.loads(out)
        assert status["done"] == 8 and status["remaining"] == 0
        campaign_id = status["campaign_id"]

        assert main(["campaign", "status", campaign_id,
                     "--root", root, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["done"] == 8

        assert main(["campaign", "report", campaign_id, "--root", root]) == 0
        table = capsys.readouterr().out
        assert "reversal" in table and "peacock" in table

        # a run-directory path works in place of the id
        assert main(["campaign", "status", f"{root}/{campaign_id}"]) == 0
        capsys.readouterr()

    def test_report_written_to_file(self, tmp_path, spec_file, capsys):
        root = str(tmp_path / "runs")
        main(["campaign", "run", str(spec_file), "--root", root, "--json"])
        campaign_id = json.loads(capsys.readouterr().out)["campaign_id"]
        out_file = tmp_path / "report.csv"
        assert main(["campaign", "report", campaign_id, "--root", root,
                     "--format", "csv", "--out", str(out_file)]) == 0
        assert out_file.read_text().startswith("family,")

    def test_unknown_campaign_errors(self, tmp_path, capsys):
        code = main(["campaign", "status", "ghost",
                     "--root", str(tmp_path), "--json"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_serve_with_local_worker_fleet(self, tmp_path, spec_file, capsys):
        # full fabric loop through the CLI: coordinator + HTTP server +
        # one spawned worker process, byte-identical to the pool runner
        root = str(tmp_path / "runs")
        main(["campaign", "run", str(spec_file),
              "--root", str(tmp_path / "base"), "--json"])
        baseline_status = json.loads(capsys.readouterr().out)
        code = main(["campaign", "serve", str(spec_file), "--root", root,
                     "--local-workers", "1", "--timeout", "120",
                     "--heartbeat-interval", "0.1", "--json"])
        out_lines = capsys.readouterr().out.strip().splitlines()
        assert code == 0
        announce = json.loads(out_lines[0])
        campaign_id = announce["campaign_id"]
        assert announce["url"].startswith("http://127.0.0.1:")
        status = json.loads("\n".join(out_lines[1:]))
        assert status["done"] == 8 and status["remaining"] == 0
        assert status["fabric"]["pending"] == 0
        base = (tmp_path / "base" / campaign_id / "results.jsonl").read_bytes()
        fleet = (tmp_path / "runs" / campaign_id / "results.jsonl").read_bytes()
        assert fleet == base

    def test_verification_failure_exits_nonzero(self, tmp_path, capsys):
        spec = {
            "name": "unsafe",
            "families": [{"family": "reversal", "sizes": [6]}],
            "schedulers": ["oneshot"],
            "properties": ["rlf", "blackhole"],
            "verify": True,
        }
        path = tmp_path / "unsafe.json"
        path.write_text(json.dumps(spec))
        code = main(["campaign", "run", str(path),
                     "--root", str(tmp_path / "runs")])
        out = capsys.readouterr().out
        assert code == 1
        assert "verification FAILED" in out


class TestTopoCommand:
    def test_writes_json(self, tmp_path, capsys):
        out_file = tmp_path / "topo.json"
        code = main(["topo", "--kind", "figure1", "--hosts", "--out", str(out_file)])
        assert code == 0
        data = json.loads(out_file.read_text())
        assert len([n for n in data["nodes"] if n["kind"] == "switch"]) == 12


class TestFigure1Command:
    def test_json_run(self, capsys):
        code = main(["figure1", "--algorithm", "wayup", "--seed", "1", "--json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["violations"] == 0
        assert data["rounds"] == 5

    def test_error_path(self, capsys):
        code = main(["figure1", "--algorithm", "wayup",
                     "--channel-latency", "warp:1"])
        assert code == 2
        assert "error" in capsys.readouterr().err
