"""CLI tests for ``repro trace summarize`` and live campaign status."""

import json

import pytest

from repro.campaign import CampaignSpec
from repro.campaign.runner import run_cell
from repro.cli.main import build_parser, main
from repro.obs import configure_tracing, reset_global_tracer, span
from repro.rest.api import build_campaign_api
from repro.rest.http_binding import RestHttpServer

SPEC = {
    "name": "clitelem",
    "families": [{"family": "reversal", "sizes": [4]}],
    "schedulers": ["peacock"],
}


class TestParser:
    def test_trace_subcommand_registered(self):
        args = build_parser().parse_args(["trace", "summarize", "t.jsonl"])
        assert args.command == "trace"
        assert args.trace_command == "summarize"

    def test_status_watch_flags_registered(self):
        args = build_parser().parse_args([
            "campaign", "status", "cid",
            "--url", "http://127.0.0.1:1", "--watch", "--interval", "0.2",
        ])
        assert args.url == "http://127.0.0.1:1"
        assert args.watch is True
        assert args.interval == 0.2


class TestTraceSummarize:
    @pytest.fixture
    def trace_file(self, tmp_path):
        reset_global_tracer()
        path = tmp_path / "trace.jsonl"
        configure_tracing(path=path)
        with span("api.execute_request", scheduler="peacock"):
            with span("api.search"):
                pass
        reset_global_tracer()
        return path

    def test_table_output(self, trace_file, capsys):
        assert main(["trace", "summarize", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "api.execute_request" in out
        assert "api.search" in out
        assert "p95 ms" in out

    def test_json_output(self, trace_file, capsys):
        assert main(["trace", "summarize", str(trace_file), "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        names = {row["name"] for row in rows}
        assert names == {"api.execute_request", "api.search"}
        for row in rows:
            assert row["count"] == 1

    def test_directory_input(self, trace_file, capsys):
        assert main(["trace", "summarize", str(trace_file.parent)]) == 0
        assert "api.search" in capsys.readouterr().out

    def test_empty_trace_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("", encoding="utf-8")
        assert main(["trace", "summarize", str(empty)]) == 1
        assert "no trace records" in capsys.readouterr().out


class TestCampaignStatusLive:
    @pytest.fixture
    def live(self, tmp_path):
        """A served campaign over real HTTP, worked to completion."""
        api = build_campaign_api(campaign_root=str(tmp_path))
        server = RestHttpServer(api, port=0)
        server.start()
        spec = CampaignSpec.from_dict(SPEC)
        api.campaigns.serve({"spec": spec.to_dict()})
        coordinator = api.campaigns.fabric(spec.campaign_id)
        worker_id = coordinator.register({"name": "wk"})["worker_id"]
        reply = coordinator.lease(worker_id, 10)
        for payload in reply["cells"]:
            record, timing = run_cell(payload)
            coordinator.submit(
                worker_id, reply["lease_id"], payload["cell_id"],
                record, timing,
            )
        coordinator.close()
        yield server.url, spec.campaign_id
        server.stop()
        api.campaigns.close()

    def test_status_url_renders_worker_table(self, live, capsys):
        url, campaign_id = live
        code = main(["campaign", "status", campaign_id, "--url", url])
        out = capsys.readouterr().out
        assert code == 0
        assert campaign_id in out
        assert "1/1 cells" in out
        assert "wk" in out  # the worker row
        assert "leases_granted=" in out

    def test_watch_exits_when_finished(self, live, capsys):
        # the campaign is already finished, so --watch prints one frame
        # and returns instead of looping
        url, campaign_id = live
        code = main([
            "campaign", "status", campaign_id,
            "--url", url, "--watch", "--interval", "0.05",
        ])
        assert code == 0
        assert "cells/s" in capsys.readouterr().out

    def test_status_url_json(self, live, capsys):
        url, campaign_id = live
        code = main([
            "campaign", "status", campaign_id, "--url", url, "--json",
        ])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["finished"] is True
        assert data["workers"][0]["cells_done"] == 1

    def test_watch_without_url_refused(self, tmp_path):
        with pytest.raises(SystemExit, match="--watch needs --url"):
            main(["campaign", "status", "cid", "--watch",
                  "--root", str(tmp_path)])

    def test_unknown_campaign_is_a_clean_error(self, live, capsys):
        url, _ = live
        code = main(["campaign", "status", "ghost", "--url", url])
        assert code != 0
        assert "404" in capsys.readouterr().err
