"""Tests for the campaign execution engine: determinism, resume, isolation."""

import json

import pytest

from repro.campaign import CampaignRunner, CampaignSpec, RunStore, run_cell
from repro.errors import CampaignError

SWEEP = {
    "name": "sweep",
    "seed": 11,
    "families": [
        {"family": "reversal", "sizes": [6, 10]},
        {"family": "random-update", "sizes": [8, 10], "repeats": 2},
        {"family": "slalom", "sizes": [1, 3]},
        {"family": "multipolicy", "sizes": [8]},
    ],
    "schedulers": ["peacock", "greedy-slf", "wayup"],
    "verify": True,
}


def _payload(spec_dict, cell_id):
    for cell in CampaignSpec.from_dict(spec_dict).expand():
        if cell.cell_id == cell_id:
            return cell.payload()
    raise KeyError(cell_id)


class TestRunCell:
    def test_ok_record_shape(self):
        record, timing = run_cell(_payload(SWEEP, "reversal-n10-r0@peacock"))
        assert record["status"] == "ok"
        assert record["rounds"] == 3
        assert record["touches"] == 9
        assert record["verified"] is True
        assert timing["id"] == record["id"] and timing["wall_ms"] >= 0

    def test_unsupported_scheduler_family_pair(self):
        record, _ = run_cell(_payload(SWEEP, "reversal-n6-r0@wayup"))
        assert record["status"] == "unsupported"
        assert record["rounds"] is None

    def test_infeasible_is_captured(self):
        spec = {
            "name": "x",
            "families": [{"family": "crossing"}],
            "schedulers": ["combined:wpe+slf+blackhole"],
        }
        record, _ = run_cell(
            _payload(spec, "crossing-n0-r0@combined:wpe+slf+blackhole")
        )
        assert record["status"] == "infeasible"
        assert record["detail"]

    def test_error_is_captured_not_raised(self):
        payload = _payload(SWEEP, "reversal-n6-r0@peacock")
        payload["scheduler"] = "no-such-scheduler"
        record, _ = run_cell(payload)
        assert record["status"] == "error"
        assert "no-such-scheduler" in record["detail"]

    def test_timeout_is_captured(self):
        # the exact minimum-round search on a 12-node reversal takes far
        # longer than a millisecond; the alarm must cut it off
        spec = {
            "name": "slow",
            "families": [{"family": "reversal", "sizes": [12],
                          "schedulers": ["optimal:rlf"]}],
            "schedulers": ["peacock"],
            "timeout_s": 0.001,
        }
        record, _ = run_cell(_payload(spec, "reversal-n12-r0@optimal:rlf"))
        assert record["status"] == "timeout"

    def test_verification_failure_is_recorded_and_counted(self, tmp_path):
        # one-shot on a reversal breaks relaxed loop freedom: the record
        # stays status=ok but verified=false, and the status counter sees it
        spec = CampaignSpec.from_dict({
            "name": "unsafe",
            "families": [{"family": "reversal", "sizes": [6]}],
            "schedulers": ["oneshot"],
            "properties": ["rlf", "blackhole"],
            "verify": True,
        })
        status = CampaignRunner(spec, root=str(tmp_path), workers=1).run()
        assert status["by_status"]["ok"] == 1
        assert status["verification_failures"] == 1

    def test_timeout_enforced_from_worker_thread(self, tmp_path):
        # e.g. the REST service runs campaigns from an HTTP handler thread,
        # where SIGALRM cannot be armed inline; the runner must fall back
        # to a pool worker so the cell still times out
        import threading

        spec = CampaignSpec.from_dict({
            "name": "slow-thread",
            "families": [{"family": "reversal", "sizes": [12]}],
            "schedulers": ["optimal:rlf"],
            "timeout_s": 0.001,
        })
        outcome = {}

        def run():
            runner = CampaignRunner(spec, root=str(tmp_path), workers=1)
            outcome["status"] = runner.run()

        thread = threading.Thread(target=run)
        thread.start()
        thread.join(timeout=60)
        assert not thread.is_alive()
        assert outcome["status"]["by_status"]["timeout"] == 1

    def test_two_phase_baseline_sweeps(self):
        # the registry made the two-phase plan sweepable: rounds/touches
        # surface through the envelope, verification is by construction
        spec = {
            "name": "2pc",
            "families": [{"family": "reversal", "sizes": [8]}],
            "schedulers": ["two-phase"],
            "verify": True,
        }
        record, _ = run_cell(_payload(spec, "reversal-n8-r0@two-phase"))
        assert record["status"] == "ok"
        assert record["rounds"] == 2  # prepare + flip (reversals need no GC)
        assert record["touches"] >= 7
        assert record["verified"] is True

    def test_scheduler_alias_resolves_in_cells(self):
        payload = _payload(SWEEP, "reversal-n6-r0@peacock")
        payload["scheduler"] = "greedy_slf"
        record, _ = run_cell(payload)
        assert record["status"] == "ok"

    def test_noop_instance(self):
        spec = {
            "name": "noop",
            "families": [{"family": "sawtooth", "sizes": [10],
                          "params": {"block": 1}}],
            "schedulers": ["peacock"],
        }
        record, _ = run_cell(_payload(spec, "sawtooth-block1-n10-r0@peacock"))
        assert record["status"] == "noop"
        assert record["rounds"] == 0 and record["touches"] == 0


class TestDeterminism:
    def test_worker_count_does_not_change_results_bytes(self, tmp_path):
        spec = CampaignSpec.from_dict(SWEEP)
        serial = CampaignRunner(spec, root=str(tmp_path / "serial"), workers=1)
        serial.run()
        parallel = CampaignRunner(spec, root=str(tmp_path / "par"), workers=4)
        parallel.run()
        assert serial.store.results_bytes() == parallel.store.results_bytes()
        assert serial.store.results_bytes()  # non-empty

    def test_rerun_is_identical(self, tmp_path):
        spec = CampaignSpec.from_dict(SWEEP)
        CampaignRunner(spec, root=str(tmp_path / "a"), workers=2).run()
        CampaignRunner(spec, root=str(tmp_path / "b"), workers=1).run()
        a = RunStore(str(tmp_path / "a"), spec.campaign_id)
        b = RunStore(str(tmp_path / "b"), spec.campaign_id)
        assert a.results_bytes() == b.results_bytes()


class TestResume:
    def test_interrupted_run_resumes_to_identical_output(self, tmp_path):
        spec = CampaignSpec.from_dict(SWEEP)
        reference = CampaignRunner(spec, root=str(tmp_path / "ref"), workers=1)
        reference.run()

        class Interrupt(Exception):
            pass

        partial = CampaignRunner(spec, root=str(tmp_path / "partial"), workers=1)

        def bomb(record, done, total):
            if done == 7:
                raise Interrupt()

        with pytest.raises(Interrupt):
            partial.run(progress=bomb)
        store = RunStore(str(tmp_path / "partial"), spec.campaign_id)
        assert len(store.records()) == 7

        resumed = CampaignRunner(spec, root=str(tmp_path / "partial"), workers=1)
        executed = []
        status = resumed.run(progress=lambda r, d, t: executed.append(r["id"]))
        assert status["remaining"] == 0
        assert len(executed) == status["total"] - 7
        assert store.results_bytes() == reference.store.results_bytes()

    def test_resume_repairs_truncated_tail(self, tmp_path):
        spec = CampaignSpec.from_dict(SWEEP)
        reference = CampaignRunner(spec, root=str(tmp_path / "ref"), workers=1)
        reference.run()
        reference_bytes = reference.store.results_bytes()

        victim_root = tmp_path / "victim"
        victim = CampaignRunner(spec, root=str(victim_root), workers=1)
        victim.run()
        results = victim_root / spec.campaign_id / "results.jsonl"
        lines = results.read_bytes().splitlines(keepends=True)
        # kill -9 mid-write: two whole records plus half a third
        results.write_bytes(b"".join(lines[:2]) + lines[2][: len(lines[2]) // 2])

        status = CampaignRunner(spec, root=str(victim_root), workers=1).run()
        assert status["remaining"] == 0
        assert RunStore(str(victim_root), spec.campaign_id).results_bytes() \
            == reference_bytes

    def test_spec_change_under_same_id_is_refused(self, tmp_path):
        spec = CampaignSpec.from_dict(SWEEP)
        CampaignRunner(spec, root=str(tmp_path), workers=1).run()
        changed = CampaignSpec.from_dict({**SWEEP, "seed": 12})
        # different spec hash -> different id -> fresh directory; force a
        # collision by reusing the existing store
        store = RunStore(str(tmp_path), spec.campaign_id)
        with pytest.raises(CampaignError):
            CampaignRunner(changed, workers=1, store=store).run()


class TestStatusCounters:
    def test_by_status_counts(self, tmp_path):
        spec = CampaignSpec.from_dict(SWEEP)
        status = CampaignRunner(spec, root=str(tmp_path), workers=1).run()
        assert status["total"] == len(spec.expand())
        assert status["done"] == status["total"]
        counted = sum(status["by_status"].values())
        assert counted == status["total"]
        # wayup on the waypointless families shows up as unsupported
        assert status["by_status"]["unsupported"] > 0
        assert status["by_status"]["error"] == 0

    def test_records_are_canonical_json_lines(self, tmp_path):
        spec = CampaignSpec.from_dict(SWEEP)
        runner = CampaignRunner(spec, root=str(tmp_path), workers=1)
        runner.run()
        raw = runner.store.results_bytes().decode("utf-8").splitlines()
        for line in raw:
            record = json.loads(line)
            assert json.dumps(
                record, sort_keys=True, separators=(",", ":")
            ) == line


class TestUnitCache:
    """Per-worker work-unit cache: same cell identity -> same problem objects."""

    def test_same_identity_reuses_the_unit(self):
        from repro.campaign import runner as runner_mod

        runner_mod._unit_cache().clear()
        first = runner_mod._cached_unit("reversal", 6, {}, 1)
        again = runner_mod._cached_unit("reversal", 6, {}, 1)
        assert again is first
        other = runner_mod._cached_unit("reversal", 7, {}, 1)
        assert other is not first
        runner_mod._unit_cache().clear()

    def test_cache_is_bounded(self, monkeypatch):
        from repro.campaign import runner as runner_mod

        runner_mod._unit_cache().clear()
        monkeypatch.setattr(runner_mod, "_UNIT_CACHE_LIMIT", 2)
        units = [runner_mod._cached_unit("reversal", n, {}, 0) for n in (5, 6, 7)]
        assert len(runner_mod._unit_cache()) <= 2
        # the evicted first entry is rebuilt as a fresh object
        rebuilt = runner_mod._cached_unit("reversal", 5, {}, 0)
        assert rebuilt is not units[0]
        runner_mod._unit_cache().clear()

    def test_scheduler_sweep_shares_oracles_across_cells(self):
        from repro.campaign import runner as runner_mod

        runner_mod._unit_cache().clear()
        spec = {
            "name": "warm",
            "families": [{"family": "reversal", "sizes": [8]}],
            "schedulers": ["peacock", "greedy-slf"],
            "verify": False,
        }
        records = []
        for cell in CampaignSpec.from_dict(spec).expand():
            record, _ = run_cell(cell.payload())
            records.append(record)
        assert all(record["status"] == "ok" for record in records)
        # both scheduler cells ran against one shared problem object
        assert len(runner_mod._unit_cache()) == 1
        (unit,) = runner_mod._unit_cache().values()
        from repro.core.oracle import _CACHE_ATTR

        assert hasattr(unit.problems[0], _CACHE_ATTR)
        # caches are thread-local: another thread sees a fresh one
        import threading

        seen = {}
        thread = threading.Thread(
            target=lambda: seen.setdefault("size", len(runner_mod._unit_cache()))
        )
        thread.start()
        thread.join()
        assert seen["size"] == 0
        runner_mod._unit_cache().clear()
