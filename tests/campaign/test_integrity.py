"""Result-integrity tests: checksums, audits, quarantine, poison, guards.

PR 10's threat model: the coordinator stops trusting well-formed
submissions.  Wire corruption is caught by the canonical-JSON checksum,
plausible lies by seeded audit re-execution on a different worker,
repeat worker-killers by poison containment, and runaway cells by
per-cell resource limits.  Every scenario asserts the determinism
contract still holds: the surviving honest fold is byte-identical to
the single-host pool runner.
"""

import json

import pytest

from repro.campaign import CampaignRunner, CampaignSpec
from repro.campaign.fabric import (
    ChaosConfig,
    Coordinator,
    run_local_fleet,
)
from repro.campaign.runner import run_cell
from repro.campaign.spec import payload_identity_hash
from repro.campaign.store import record_checksum

SWEEP = {
    "name": "integ",
    "seed": 3,
    "families": [{"family": "reversal", "sizes": [4, 6], "repeats": 2}],
    "schedulers": ["peacock", "greedy-slf"],
}
N_CELLS = 8

FAST = dict(
    lease_ttl_s=0.25,
    lease_hard_ttl_factor=3.0,
    heartbeat_interval_s=0.05,
    backoff_base_s=0.01,
    backoff_cap_s=0.05,
)


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """The pool runner's byte-exact output for SWEEP (the ground truth)."""
    root = tmp_path_factory.mktemp("baseline")
    spec = CampaignSpec.from_dict(SWEEP)
    runner = CampaignRunner(spec, root=str(root), workers=1)
    runner.run()
    return runner.store.results_bytes()


def _coordinator(tmp_path, spec_dict=SWEEP, **options):
    merged = {**FAST, **options}
    return Coordinator(
        CampaignSpec.from_dict(spec_dict), root=str(tmp_path), **merged
    )


class TestIntegrityPrimitives:
    def test_record_checksum_is_stable_and_tamper_evident(self):
        record = {"id": "a", "rounds": 3, "seed": 7}
        assert record_checksum(record) == record_checksum(dict(record))
        # key order must not matter (canonical encoding)
        assert record_checksum({"seed": 7, "rounds": 3, "id": "a"}) == (
            record_checksum(record)
        )
        tampered = dict(record, rounds=4)
        assert record_checksum(tampered) != record_checksum(record)

    def test_payload_identity_survives_escalation_rewrites(self):
        cells = CampaignSpec.from_dict(SWEEP).expand()
        payload = cells[0].payload()
        base = payload_identity_hash(payload)
        escalated = dict(
            payload, timeout_s=120.0, scheduler_params={"node_budget": 5}
        )
        assert payload_identity_hash(escalated) == base
        other = cells[1].payload()
        assert payload_identity_hash(other) != base

    def test_wrong_cell_hash_is_rejected_and_quarantines(self, tmp_path):
        coordinator = _coordinator(tmp_path)
        worker_id = coordinator.register({"name": "confused"})["worker_id"]
        reply = coordinator.lease(worker_id, 2)
        payload = reply["cells"][0]
        record, timing = run_cell(payload)
        out = coordinator.submit(
            worker_id, reply["lease_id"], payload["cell_id"], record, timing,
            {
                "record_sha256": record_checksum(record),
                "cell_hash": "not-the-cell-you-leased",
            },
        )
        assert out["rejected"] and out["quarantined"]
        assert out["reason"] == "integrity"
        assert coordinator.counters["integrity_rejects"] == 1
        assert coordinator.counters["quarantines"] == 1
        # nothing was journaled or folded, and the name stays banned
        assert coordinator.store.status()["done"] == 0
        again = coordinator.register({"name": "confused"})
        assert again["quarantined"] is True
        assert coordinator.lease(again["worker_id"], 1)["quarantined"] is True
        coordinator.close()


class TestAuditSampling:
    def test_sampling_is_deterministic_and_fraction_bounded(self, tmp_path):
        ids = [c.cell_id for c in CampaignSpec.from_dict(SWEEP).expand()]
        a = _coordinator(tmp_path / "a", audit_fraction=0.5, audit_seed=9)
        b = _coordinator(tmp_path / "b", audit_fraction=0.5, audit_seed=9)
        assert [a._audit_selected(i) for i in ids] == [
            b._audit_selected(i) for i in ids
        ]
        none = _coordinator(tmp_path / "c", audit_fraction=0.0)
        every = _coordinator(tmp_path / "d", audit_fraction=1.0)
        assert not any(none._audit_selected(i) for i in ids)
        assert all(every._audit_selected(i) for i in ids)
        for coordinator in (a, b, none, every):
            coordinator.close()


class TestCorruptingWorker:
    def test_corrupted_submit_rejected_worker_quarantined(
        self, tmp_path, baseline
    ):
        # worker 0's first submission is bit-damaged after checksumming
        # (wire corruption): the coordinator must reject it pre-journal,
        # quarantine the name, and let the honest worker finish
        chaos = {0: ChaosConfig(corrupt_submits=(0,))}
        coordinator = _coordinator(tmp_path, lease_cells=2)
        summaries = run_local_fleet(coordinator, 2, chaos=chaos)
        coordinator.close()
        assert coordinator.finished
        assert coordinator.store.results_bytes() == baseline
        assert coordinator.counters["integrity_rejects"] >= 1
        assert coordinator.counters["quarantines"] == 1
        assert coordinator.status()["fabric"]["quarantined_workers"] == [
            "local0"
        ]
        assert summaries[0]["quarantined"] is True
        assert summaries[0]["rejected_submits"] >= 1
        assert summaries[1]["quarantined"] is False


class TestLyingWorker:
    def test_audit_reexecution_catches_plausible_lies(
        self, tmp_path, baseline
    ):
        # worker 0 lies from the start -- well-formed records, matching
        # checksums.  With every cell audited, the lie never finds a
        # byte-identical second run, the two honest workers corroborate
        # each other, and the liar is quarantined.
        chaos = {0: ChaosConfig(lie_after_cells=0)}
        coordinator = _coordinator(
            tmp_path, lease_cells=1, audit_fraction=1.0
        )
        summaries = run_local_fleet(coordinator, 3, chaos=chaos)
        coordinator.close()
        assert coordinator.finished
        assert coordinator.store.results_bytes() == baseline
        assert coordinator.counters["audits_run"] == N_CELLS
        assert coordinator.counters["audit_mismatches"] >= 1
        assert coordinator.counters["quarantines"] == 1
        assert "local0" in coordinator.telemetry()["quarantined_workers"]
        assert summaries[0]["quarantined"] is True

    def test_honest_fleet_audits_clean(self, tmp_path, baseline):
        coordinator = _coordinator(
            tmp_path, lease_cells=2, audit_fraction=1.0
        )
        run_local_fleet(coordinator, 2)
        coordinator.close()
        assert coordinator.finished
        assert coordinator.store.results_bytes() == baseline
        assert coordinator.counters["audits_run"] == N_CELLS
        assert coordinator.counters["audit_mismatches"] == 0
        assert coordinator.counters["quarantines"] == 0


class TestBatchedSubmits:
    def test_batched_fleet_is_byte_identical(self, tmp_path, baseline):
        coordinator = _coordinator(tmp_path, lease_cells=4)
        run_local_fleet(coordinator, 2, batch_cells=3)
        coordinator.close()
        assert coordinator.finished
        assert coordinator.store.results_bytes() == baseline
        assert coordinator.counters["batch_submits"] >= 1

    def test_replayed_batch_is_a_row_of_noops(self, tmp_path, baseline):
        # at-least-once delivery for batches: redelivering the whole
        # batch (a worker resubmitting after an outage) folds nothing
        # twice -- every entry comes back as a counted duplicate
        coordinator = _coordinator(tmp_path, lease_cells=N_CELLS)
        worker_id = coordinator.register({"name": "batcher"})["worker_id"]
        reply = coordinator.lease(worker_id, N_CELLS)
        entries = []
        for payload in reply["cells"]:
            record, timing = run_cell(payload)
            entries.append({
                "cell_id": payload["cell_id"],
                "record": record,
                "timing": timing,
                "integrity": {
                    "record_sha256": record_checksum(record),
                    "cell_hash": payload_identity_hash(payload),
                },
            })
        first = coordinator.submit_batch(worker_id, reply["lease_id"], entries)
        assert all(r["accepted"] for r in first["results"])
        assert first["done"] is True
        replay = coordinator.submit_batch(
            worker_id, reply["lease_id"], entries
        )
        assert all(r.get("duplicate") for r in replay["results"])
        assert coordinator.counters["duplicate_submits"] == N_CELLS
        coordinator.close()
        assert coordinator.store.results_bytes() == baseline


class TestPoisonCell:
    def test_repeat_killer_cell_is_contained(self, tmp_path, baseline):
        # every worker that leases the first cell dies on it.  After two
        # distinct worker deaths the cell must be declared poisoned and
        # terminally recorded, letting the surviving worker finish the
        # rest of the campaign untouched.
        spec = CampaignSpec.from_dict(SWEEP)
        poison_id = spec.expand()[0].cell_id
        chaos = {
            i: ChaosConfig(
                die_on_cells=(poison_id,), kill_mode="exception"
            )
            for i in range(3)
        }
        coordinator = _coordinator(
            tmp_path, lease_cells=1, poison_kill_threshold=2,
        )
        summaries = run_local_fleet(coordinator, 3, chaos=chaos)
        coordinator.close()
        assert coordinator.finished
        assert sum(1 for s in summaries if s["died"]) == 2
        assert coordinator.counters["kills"] == 2
        assert coordinator.counters["poisoned_cells"] == 1
        records = coordinator.store.records()
        assert records[0]["id"] == poison_id
        assert records[0]["status"] == "error"
        assert "poisoned: killed 2 distinct workers" in records[0]["detail"]
        # every other cell matches the pool baseline line for line
        expected = [
            json.loads(line)
            for line in baseline.decode("utf-8").splitlines()
        ]
        assert records[1:] == expected[1:]


class TestResourceGuards:
    MEMHOG = {
        "name": "hog",
        "seed": 1,
        "mem_limit_mb": 64,
        "families": [{"family": "memhog", "sizes": [512]}],
        "schedulers": ["peacock"],
    }

    def test_mem_limit_turns_oom_into_deterministic_error(self):
        [cell] = CampaignSpec.from_dict(self.MEMHOG).expand()
        payload = cell.payload()
        assert payload["mem_limit_mb"] == 64
        record, timing = run_cell(payload)
        assert record["status"] == "error"
        assert "MemoryError" in record["detail"]
        # deterministic: a second run (fresh worker, audit re-execution)
        # produces the identical record
        record2, _ = run_cell(payload)
        assert record2 == record

    def test_unlimited_memhog_cell_completes(self):
        spec = dict(self.MEMHOG)
        spec.pop("mem_limit_mb")
        spec["families"] = [{"family": "memhog", "sizes": [8]}]
        [cell] = CampaignSpec.from_dict(spec).expand()
        record, timing = run_cell(cell.payload())
        assert record["status"] == "ok"
        rss = timing.get("peak_rss_kb")
        assert rss is None or (isinstance(rss, int) and rss > 0)

    def test_cpu_limit_raises_catchable_timeout(self):
        import sys

        from repro.campaign.runner import resource_guard
        from repro.errors import ScheduleTimeoutError

        if sys.platform not in ("linux", "darwin"):
            pytest.skip("rlimit guards are POSIX-only")
        with pytest.raises(ScheduleTimeoutError, match="cpu limit"):
            with resource_guard(None, 0.1):
                while True:
                    sum(range(10000))

    def test_guard_without_limits_is_a_noop(self):
        from repro.campaign.runner import resource_guard

        with resource_guard(None, None):
            assert sum(range(10)) == 45
