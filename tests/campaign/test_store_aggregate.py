"""Tests for the run-directory store and the aggregation helpers."""

import json

import pytest

from repro.campaign import (
    AGGREGATE_HEADERS,
    CampaignSpec,
    RunStore,
    aggregate_records,
    aggregate_rows,
    render_report,
)
from repro.errors import CampaignError

SPEC = CampaignSpec.from_dict({
    "name": "store",
    "families": [{"family": "reversal", "sizes": [6]}],
    "schedulers": ["peacock"],
})


def _record(cell_id="a", family="f", scheduler="s", status="ok",
            rounds=3, touches=5):
    return {
        "cell": 0, "id": cell_id, "family": family, "size": 6, "repeat": 0,
        "seed": 1, "scheduler": scheduler, "status": status,
        "rounds": rounds, "touches": touches, "verified": None, "detail": None,
    }


class TestRunStore:
    def test_initialize_and_read_back(self, tmp_path):
        store = RunStore(str(tmp_path), SPEC.campaign_id)
        store.initialize(SPEC, n_cells=4)
        store.append(_record("a"), {"id": "a", "wall_ms": 1.0})
        store.append(_record("b"), {"id": "b", "wall_ms": 2.0})
        store.close()
        assert store.completed_ids() == {"a", "b"}
        assert store.manifest()["n_cells"] == 4
        assert store.status()["done"] == 2
        assert store.status()["remaining"] == 2
        assert [t["wall_ms"] for t in store.timings()] == [1.0, 2.0]

    def test_open_dir(self, tmp_path):
        store = RunStore(str(tmp_path), SPEC.campaign_id)
        store.initialize(SPEC, n_cells=1)
        again = RunStore.open_dir(store.directory)
        assert again.campaign_id == SPEC.campaign_id
        with pytest.raises(CampaignError):
            RunStore.open_dir(tmp_path / "nope")

    def test_manifest_mismatch_refused(self, tmp_path):
        store = RunStore(str(tmp_path), SPEC.campaign_id)
        store.initialize(SPEC, n_cells=1)
        other = CampaignSpec.from_dict({
            "name": "store",
            "families": [{"family": "reversal", "sizes": [8]}],
            "schedulers": ["peacock"],
        })
        with pytest.raises(CampaignError):
            store.initialize(other, n_cells=1)

    def test_repair_truncates_partial_line(self, tmp_path):
        store = RunStore(str(tmp_path), SPEC.campaign_id)
        store.initialize(SPEC, n_cells=2)
        store.append(_record("a"), {"id": "a", "wall_ms": 1.0})
        store.close()
        path = store.directory / "results.jsonl"
        path.write_bytes(path.read_bytes() + b'{"id": "tru')
        store.initialize(SPEC, n_cells=2)  # re-open repairs
        assert store.completed_ids() == {"a"}
        assert path.read_bytes().endswith(b"\n")

    def test_repair_after_kill_between_record_and_timing(self, tmp_path):
        # a SIGKILL can land after the results line hit disk but before
        # the timing sidecar did; the record must survive and a dangling
        # partial timing line must be truncated away
        store = RunStore(str(tmp_path), SPEC.campaign_id)
        store.initialize(SPEC, n_cells=2)
        store.append(_record("a"), {"id": "a", "wall_ms": 1.0})
        store.close()
        timings = store.directory / "timings.jsonl"
        timings.write_bytes(timings.read_bytes() + b'{"id": "b", "wal')
        store.initialize(SPEC, n_cells=2)
        assert store.completed_ids() == {"a"}
        assert [t["id"] for t in store.timings()] == ["a"]
        assert timings.read_bytes().endswith(b"\n")

    def test_record_without_timing_tolerated(self, tmp_path):
        # the complementary crash: record flushed, timing lost entirely
        from repro.campaign import aggregate_rows

        store = RunStore(str(tmp_path), SPEC.campaign_id)
        store.initialize(SPEC, n_cells=2)
        store.append(_record("a"), {"id": "a", "wall_ms": 1.0})
        store.append(_record("b"), {"id": "b", "wall_ms": 2.0})
        store.close()
        timings = store.directory / "timings.jsonl"
        lines = timings.read_bytes().splitlines(keepends=True)
        timings.write_bytes(b"".join(lines[:1]))  # drop b's timing
        assert store.status()["done"] == 2
        rows = aggregate_rows(store.records(), store.timings())
        assert rows and rows[0][2] == 2  # both records aggregated

    def test_manifest_write_is_atomic(self, tmp_path, monkeypatch):
        # a crash between writing the temp file and the rename leaves the
        # old manifest intact and no garbage at the final path
        import os as _os

        from repro.campaign.store import atomic_write_text

        target = tmp_path / "manifest.json"
        atomic_write_text(target, '{"version": 1}\n')

        def exploding_replace(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(_os, "replace", exploding_replace)
        with pytest.raises(OSError):
            atomic_write_text(target, '{"version": 2}\n')
        monkeypatch.undo()
        assert target.read_text() == '{"version": 1}\n'

    def test_atomic_write_fsyncs_parent_directory(
        self, tmp_path, monkeypatch
    ):
        # the rename is only durable once the directory entry is synced;
        # atomic_write_text must flush the *parent*, after the replace
        import repro.campaign.store as store_mod

        synced = []
        monkeypatch.setattr(
            store_mod, "_fsync_directory", lambda d: synced.append(d)
        )
        target = tmp_path / "manifest.json"
        store_mod.atomic_write_text(target, '{"version": 1}\n')
        assert synced == [tmp_path]
        assert target.read_text() == '{"version": 1}\n'

    def test_initialize_leaves_no_temp_files(self, tmp_path):
        store = RunStore(str(tmp_path), SPEC.campaign_id)
        store.initialize(SPEC, n_cells=1)
        assert not list(store.directory.glob("*.tmp"))

    def test_fsync_opt_out_still_writes(self, tmp_path):
        store = RunStore(str(tmp_path), SPEC.campaign_id, fsync=False)
        store.initialize(SPEC, n_cells=1)
        store.append(_record("a"), {"id": "a", "wall_ms": 1.0})
        store.close()
        assert store.completed_ids() == {"a"}


class TestAggregate:
    def test_groups_and_percentiles(self):
        records = [
            _record("a1", "fam", "s1", rounds=2, touches=10),
            _record("a2", "fam", "s1", rounds=4, touches=20),
            _record("a3", "fam", "s1", status="error", rounds=None, touches=None),
            _record("b1", "fam", "s2", rounds=7, touches=7),
            _record("c1", "other", "s1", status="unsupported",
                    rounds=None, touches=None),
        ]
        timings = [
            {"id": "a1", "wall_ms": 1.0},
            {"id": "a2", "wall_ms": 3.0},
            {"id": "b1", "wall_ms": 5.0},
        ]
        rows = aggregate_rows(records, timings)
        assert [row[:5] for row in rows] == [
            ["fam", "s1", 3, 2, 1],
            ["fam", "s2", 1, 1, 0],
            ["other", "s1", 1, 0, 0],
        ]
        fam_s1 = rows[0]
        by_header = dict(zip(AGGREGATE_HEADERS, fam_s1))
        assert by_header["rounds p50"] == 3.0
        assert by_header["rounds max"] == 4
        assert by_header["wall ms p50"] == 2.0
        # the unsupported-only group shows dashes, not crashes
        assert rows[2][5] == "-"

    def test_aggregate_records_roundtrip(self):
        records = [_record("a1", "fam", "s1")]
        objects = aggregate_records(records)
        assert objects[0]["family"] == "fam"
        assert set(objects[0]) == set(AGGREGATE_HEADERS)

    def test_render_formats(self):
        records = [_record("a1", "fam", "s1")]
        assert "fam" in render_report(records, fmt="ascii", title="t")
        assert render_report(records, fmt="csv").startswith("family,")
        parsed = json.loads(render_report(records, fmt="json"))
        assert parsed[0]["scheduler"] == "s1"
        with pytest.raises(ValueError):
            render_report(records, fmt="bogus")
