"""Fault-injection tests for the campaign fabric.

The fabric's contract: an N-worker fleet -- surviving worker deaths,
frozen heartbeats, and dropped / duplicated / delayed submissions --
produces a ``results.jsonl`` byte-identical to the single-host pool
runner.  Every scenario here attacks one clause of that contract with
the deterministic chaos harness (:mod:`repro.campaign.fabric.chaos`).
"""

import random

import pytest

from repro.campaign import CampaignRunner, CampaignSpec
from repro.campaign.fabric import (
    ChaosConfig,
    Coordinator,
    FabricWorker,
    LocalClient,
    run_local_fleet,
)
from repro.campaign.runner import run_cell
from repro.errors import CampaignError

SWEEP = {
    "name": "fab",
    "seed": 3,
    "families": [{"family": "reversal", "sizes": [4, 6], "repeats": 2}],
    "schedulers": ["peacock", "greedy-slf"],
}
N_CELLS = 8

#: fast-converging fabric knobs for fault scenarios
FAST = dict(
    lease_ttl_s=0.25,
    lease_hard_ttl_factor=3.0,
    heartbeat_interval_s=0.05,
    backoff_base_s=0.01,
    backoff_cap_s=0.05,
)


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """The pool runner's byte-exact output for SWEEP (the ground truth)."""
    root = tmp_path_factory.mktemp("baseline")
    spec = CampaignSpec.from_dict(SWEEP)
    runner = CampaignRunner(spec, root=str(root), workers=1)
    runner.run()
    return runner.store.results_bytes()


def _coordinator(tmp_path, spec_dict=SWEEP, **options):
    merged = {**FAST, **options}
    return Coordinator(
        CampaignSpec.from_dict(spec_dict), root=str(tmp_path), **merged
    )


class TestFleetDeterminism:
    def test_three_worker_fleet_matches_pool_runner(self, tmp_path, baseline):
        coordinator = _coordinator(tmp_path, lease_cells=2)
        summaries = run_local_fleet(coordinator, 3)
        coordinator.close()
        assert coordinator.finished
        assert coordinator.store.results_bytes() == baseline
        assert sum(s["cells_done"] for s in summaries) == N_CELLS

    def test_single_worker_fleet_matches_pool_runner(self, tmp_path, baseline):
        coordinator = _coordinator(tmp_path)
        run_local_fleet(coordinator, 1)
        coordinator.close()
        assert coordinator.store.results_bytes() == baseline

    def test_out_of_order_shards_fold_canonically(self, tmp_path, baseline):
        # drive the protocol by hand: compute every cell, submit in
        # reverse canonical order -- the store must still receive the
        # canonical sequence
        coordinator = _coordinator(tmp_path, lease_cells=N_CELLS)
        worker_id = coordinator.register({"name": "manual"})["worker_id"]
        reply = coordinator.lease(worker_id, N_CELLS)
        shards = [
            (payload["cell_id"], *run_cell(payload))
            for payload in reply["cells"]
        ]
        for cell_id, record, timing in reversed(shards):
            coordinator.submit(worker_id, reply["lease_id"], cell_id, record, timing)
        coordinator.close()
        assert coordinator.finished
        assert coordinator.store.results_bytes() == baseline


class TestChaosFaults:
    def test_duplicate_submits_are_counted_noops(self, tmp_path, baseline):
        chaos = {0: ChaosConfig(duplicate_submits=tuple(range(N_CELLS)))}
        coordinator = _coordinator(tmp_path)
        run_local_fleet(coordinator, 1, chaos=chaos)
        coordinator.close()
        assert coordinator.store.results_bytes() == baseline
        assert coordinator.counters["duplicate_submits"] >= 1

    def test_dropped_submit_is_reclaimed_and_rerun(self, tmp_path, baseline):
        # worker 0 loses its first shard on the wire but stays alive; the
        # hard lease-lifetime cap must pry the cell loose anyway
        chaos = {0: ChaosConfig(drop_submits=(0,))}
        coordinator = _coordinator(tmp_path, lease_cells=1)
        run_local_fleet(coordinator, 2, chaos=chaos)
        coordinator.close()
        assert coordinator.finished
        assert coordinator.store.results_bytes() == baseline
        assert coordinator.counters["reclaims"] >= 1

    def test_killed_worker_cells_are_reclaimed(self, tmp_path, baseline):
        # worker 0 dies after computing its first record, *before*
        # submitting it -- work done, coordinator unaware
        chaos = {0: ChaosConfig(kill_after_cells=1, kill_mode="exception")}
        coordinator = _coordinator(tmp_path, lease_cells=2)
        summaries = run_local_fleet(coordinator, 2, chaos=chaos)
        coordinator.close()
        assert summaries[0]["died"] is True
        assert coordinator.finished
        assert coordinator.store.results_bytes() == baseline
        assert coordinator.counters["reclaims"] >= 1

    def test_frozen_heartbeats_reclaim_and_stale_submit_absorbed(
        self, tmp_path, baseline
    ):
        # worker 0 never heartbeats and naps before its first submit:
        # during the nap it is declared dead and its lease reclaimed, so
        # the delayed submit arrives stale -- and is absorbed
        chaos = {0: ChaosConfig(
            freeze_heartbeats_after=0, delay_submits={0: 0.6}
        )}
        coordinator = _coordinator(
            tmp_path, lease_cells=1, heartbeat_timeout_s=0.15
        )
        run_local_fleet(coordinator, 2, chaos=chaos)
        coordinator.close()
        assert coordinator.finished
        assert coordinator.store.results_bytes() == baseline
        assert coordinator.counters["reclaims"] >= 1
        assert coordinator.counters["stale_submits"] >= 1


class TestTransientFailures:
    def test_bounded_retries_then_terminal_error_record(self, tmp_path):
        spec = {
            "name": "one",
            "families": [{"family": "reversal", "sizes": [4]}],
            "schedulers": ["peacock"],
        }
        clock = [0.0]
        coordinator = _coordinator(
            tmp_path, spec_dict=spec,
            max_transient_retries=2, clock=lambda: clock[0],
        )
        worker_id = coordinator.register({"name": "flaky"})["worker_id"]
        for attempt in range(3):
            reply = coordinator.lease(worker_id, 1)
            assert reply["cells"], f"no lease on attempt {attempt}"
            cell_id = reply["cells"][0]["cell_id"]
            outcome = coordinator.fail(
                worker_id, reply["lease_id"], cell_id, "disk on fire"
            )
            clock[0] += 1.0  # step past the retry backoff
        assert outcome["retried"] is False
        assert coordinator.finished
        coordinator.close()
        [record] = coordinator.store.records()
        assert record["status"] == "error"
        assert "disk on fire" in record["detail"]
        assert "gave up after 3 attempts" in record["detail"]
        assert coordinator.counters["transient_failures"] == 3
        assert coordinator.counters["retries"] == 2

    def test_worker_level_exception_retries_to_success(self, tmp_path, baseline):
        # the first run_cell call blows up at the harness level; the
        # retry (same worker, later lease) succeeds and output is intact
        failures = {"left": 1}

        def flaky_run_cell(payload):
            if failures["left"]:
                failures["left"] -= 1
                raise RuntimeError("simulated harness OOM")
            return run_cell(payload)

        coordinator = _coordinator(tmp_path, lease_cells=1)
        worker = FabricWorker(
            LocalClient(coordinator), name="flaky", run_cell_fn=flaky_run_cell
        )
        worker.run()
        coordinator.close()
        assert coordinator.finished
        assert coordinator.store.results_bytes() == baseline
        assert coordinator.counters["transient_failures"] == 1
        assert coordinator.counters["retries"] == 1


class TestEscalation:
    ONE_TIMEOUT = {
        "name": "slowone",
        "families": [{"family": "reversal", "sizes": [4]}],
        "schedulers": ["optimal:rlf?node_budget=50"],
        "timeout_s": 0.05,
    }

    def _fake_timeout_record(self, payload):
        return {
            "cell": payload["index"], "id": payload["cell_id"],
            "family": payload["family"], "size": payload["size"],
            "repeat": payload["repeat"], "seed": payload["seed"],
            "scheduler": payload["scheduler"], "status": "timeout",
            "rounds": None, "touches": None, "verified": None,
            "detail": "exceeded budget",
        }

    def test_timeout_escalates_once_with_scaled_budgets(self, tmp_path):
        clock = [0.0]
        coordinator = _coordinator(
            tmp_path, spec_dict=self.ONE_TIMEOUT,
            escalation_factor=4.0, clock=lambda: clock[0],
        )
        worker_id = coordinator.register({"name": "mt"})["worker_id"]
        reply = coordinator.lease(worker_id, 1)
        payload = reply["cells"][0]
        assert payload["timeout_s"] == pytest.approx(0.05)
        timing = {"id": payload["cell_id"], "wall_ms": 50.0}
        outcome = coordinator.submit(
            worker_id, reply["lease_id"], payload["cell_id"],
            self._fake_timeout_record(payload), timing,
        )
        assert outcome["escalated"] is True
        assert coordinator.counters["escalations"] == 1
        # the re-leased payload carries the larger wall budget and the
        # scaled search budget for the exact engine
        reply = coordinator.lease(worker_id, 1)
        escalated = reply["cells"][0]
        assert escalated["timeout_s"] == pytest.approx(0.2)
        assert escalated["scheduler_params"] == {"node_budget": 200}
        # a second timeout is terminal, not re-escalated
        outcome = coordinator.submit(
            worker_id, reply["lease_id"], escalated["cell_id"],
            self._fake_timeout_record(escalated), timing,
        )
        assert outcome.get("escalated") is not True
        assert coordinator.finished
        coordinator.close()
        [record] = coordinator.store.records()
        assert record["status"] == "timeout"
        assert coordinator.counters["escalations"] == 1

    def test_escalation_disabled_folds_first_timeout(self, tmp_path):
        coordinator = _coordinator(
            tmp_path, spec_dict=self.ONE_TIMEOUT, escalation_factor=0.0
        )
        worker_id = coordinator.register({"name": "mt"})["worker_id"]
        reply = coordinator.lease(worker_id, 1)
        payload = reply["cells"][0]
        coordinator.submit(
            worker_id, reply["lease_id"], payload["cell_id"],
            self._fake_timeout_record(payload),
            {"id": payload["cell_id"], "wall_ms": 50.0},
        )
        assert coordinator.finished
        assert coordinator.counters["escalations"] == 0
        coordinator.close()

    def test_escalated_rerun_recovers_end_to_end(self, tmp_path):
        # a sleeper scheduler that outlives the first wall budget but
        # fits the escalated one; the worker runs on the *main* thread so
        # run_cell's SIGALRM timeout is live
        import time

        from repro.core.registry import (
            REGISTRY, register_scheduler, resolve_scheduler,
        )

        inner = resolve_scheduler("peacock")

        def napping_invoke(problem, cleanup, oracle, properties, params):
            time.sleep(0.4)
            return inner.invoke(problem, cleanup, oracle, None, {})

        register_scheduler("napper", invoke=napping_invoke)
        try:
            spec = {
                "name": "nap",
                "families": [{"family": "reversal", "sizes": [4]}],
                "schedulers": ["napper"],
                "timeout_s": 0.15,
            }
            coordinator = _coordinator(
                tmp_path, spec_dict=spec,
                lease_ttl_s=5.0, escalation_factor=8.0,
            )
            FabricWorker(LocalClient(coordinator), name="mt").run()
            coordinator.close()
            assert coordinator.finished
            assert coordinator.counters["escalations"] == 1
            [record] = coordinator.store.records()
            assert record["status"] == "ok"
            assert record["scheduler"] == "napper"
        finally:
            REGISTRY.unregister("napper")


class TestHttpFleet:
    def test_sigkilled_process_worker_over_http(self, tmp_path, baseline):
        # the real thing: process workers over real HTTP, one SIGKILLed
        # mid-cell (after computing, before submitting); the survivor
        # finishes the campaign and bytes still match the pool runner
        import multiprocessing

        from repro.campaign.fabric import worker_main
        from repro.rest.api import build_campaign_api
        from repro.rest.http_binding import RestHttpServer

        api = build_campaign_api(campaign_root=str(tmp_path))
        server = RestHttpServer(api, port=0)
        server.start()
        try:
            spec = CampaignSpec.from_dict(SWEEP)
            api.campaigns.serve({
                "spec": spec.to_dict(),
                "lease_ttl_s": 0.5,
                "heartbeat_interval_s": 0.1,
                "lease_cells": 2,
            })
            coordinator = api.campaigns.fabric(spec.campaign_id)
            ctx = multiprocessing.get_context("spawn")
            victim = ctx.Process(
                target=worker_main, args=(server.url, spec.campaign_id),
                kwargs={"name": "victim", "chaos": ChaosConfig(
                    kill_after_cells=2, kill_mode="sigkill"
                ).to_dict()},
                daemon=True,
            )
            survivor = ctx.Process(
                target=worker_main, args=(server.url, spec.campaign_id),
                kwargs={"name": "survivor"},
                daemon=True,
            )
            # the victim works alone first so it is guaranteed to be the
            # one holding cells when the SIGKILL lands
            victim.start()
            victim.join(timeout=30)
            assert victim.exitcode == -9  # actually SIGKILLed
            assert not coordinator.finished
            survivor.start()
            assert coordinator.wait(timeout_s=60.0)
            survivor.join(timeout=10)
            coordinator.close()
            assert coordinator.store.results_bytes() == baseline
            assert coordinator.counters["reclaims"] >= 1
        finally:
            server.stop()
            api.campaigns.close()


class TestResume:
    def test_coordinator_restart_resumes_canonical_prefix(
        self, tmp_path, baseline
    ):
        chaos = {0: ChaosConfig(kill_after_cells=3, kill_mode="exception")}
        first = _coordinator(tmp_path, lease_cells=2)
        summaries = run_local_fleet(first, 1, chaos=chaos)
        first.close()
        assert summaries[0]["died"] is True
        assert not first.finished
        done_before = len(first.store.completed_ids())
        assert 0 < done_before < N_CELLS

        second = _coordinator(tmp_path)
        assert second.status()["done"] == done_before
        run_local_fleet(second, 2)
        second.close()
        assert second.finished
        assert second.store.results_bytes() == baseline
        assert len(second.store.records()) == N_CELLS

    def test_non_prefix_results_refused(self, tmp_path):
        spec = CampaignSpec.from_dict(SWEEP)
        first = _coordinator(tmp_path, lease_cells=N_CELLS)
        worker_id = first.register({"name": "manual"})["worker_id"]
        reply = first.lease(worker_id, N_CELLS)
        # complete only a non-prefix cell by writing it straight through
        # the store (simulating a corrupted / hand-edited run directory)
        payload = reply["cells"][3]
        record, timing = run_cell(payload)
        first.store.append(record, timing)
        first.close()
        with pytest.raises(CampaignError, match="canonical prefix"):
            Coordinator(spec, root=str(tmp_path), **FAST)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_resume_after_kill_is_byte_deterministic(
        self, tmp_path, baseline, seed
    ):
        # property-style: kill a worker at a seed-derived point, resume
        # with a fresh coordinator + fleet (with duplicate-submit noise),
        # and the final bytes must still match the pool runner
        rng = random.Random(seed)
        kill_after = rng.randint(1, N_CELLS - 2)
        chaos = {0: ChaosConfig(kill_after_cells=kill_after,
                                kill_mode="exception")}
        first = _coordinator(tmp_path, lease_cells=rng.choice([1, 2, 3]))
        run_local_fleet(first, 1, chaos=chaos)
        first.close()
        assert not first.finished

        noise = {1: ChaosConfig(duplicate_submits=(0,))}
        second = _coordinator(tmp_path, lease_cells=rng.choice([1, 2]))
        run_local_fleet(second, 2, chaos=noise)
        second.close()
        assert second.finished
        assert second.store.results_bytes() == baseline
