"""Fleet vs pool telemetry parity on the 42-cell smoke grid.

The timing sidecar now carries the envelope's own numbers per cell
(``api_wall_ms`` plus the summed ``oracle`` counter deltas), so fabric
telemetry and pool-runner output must report the *same* figures for the
same campaign.  Wall-clock fields vary run to run; the oracle counter
deltas are deterministic given a cold cache and canonical cell order,
and that determinism is the parity contract checked here -- on the same
42-cell grid ``make fabric-smoke`` gates in CI.
"""

import pytest

from repro.campaign import CampaignRunner, CampaignSpec
from repro.campaign.fabric import Coordinator, run_local_fleet
from repro.campaign.runner import _unit_cache
from repro.core.oracle import clear_nogoods, clear_registry
from repro.metrics import global_collector, reset_global_collector

#: The ``make fabric-smoke`` grid (benchmarks/run_fabric_smoke.py).
SPEC = {
    "name": "fabric-smoke",
    "seed": 42,
    "schedulers": ["peacock", "greedy-slf", "wayup"],
    "timeout_s": 30,
    "families": [
        {"family": "reversal", "sizes": [6, 10, 14, 18]},
        {"family": "sawtooth", "sizes": [10, 14, 18]},
        {"family": "slalom", "sizes": [2, 4, 6]},
        {"family": "random-update", "sizes": [8, 12], "repeats": 2},
    ],
}
N_CELLS = 42


def _cold_start():
    """Both runs must see identical (cold) oracle/unit caches."""
    clear_registry()
    clear_nogoods()
    _unit_cache().clear()


@pytest.fixture(scope="module")
def runs(tmp_path_factory):
    """The pool run and the 1-worker fleet run of the same grid."""
    spec = CampaignSpec.from_dict(SPEC)
    assert len(spec.expand()) == N_CELLS

    _cold_start()
    pool = CampaignRunner(
        spec, root=str(tmp_path_factory.mktemp("pool")), workers=1
    )
    pool.run()

    _cold_start()
    reset_global_collector()
    coordinator = Coordinator(
        spec, root=str(tmp_path_factory.mktemp("fleet")), lease_cells=4
    )
    run_local_fleet(coordinator, 1)
    coordinator.close()
    assert coordinator.finished
    telemetry = coordinator.telemetry()
    return pool.store, coordinator.store, telemetry


class TestTimingSidecarParity:
    def test_results_are_byte_identical(self, runs):
        pool_store, fleet_store, _ = runs
        assert pool_store.results_bytes() == fleet_store.results_bytes()

    def test_sidecars_cover_every_cell_with_the_same_schema(self, runs):
        pool_store, fleet_store, _ = runs
        pool_timings = pool_store.timings()
        fleet_timings = fleet_store.timings()
        assert [t["id"] for t in pool_timings] == [
            t["id"] for t in fleet_timings
        ]
        assert len(pool_timings) == N_CELLS
        for timing in pool_timings + fleet_timings:
            assert set(timing) == {
                "id", "wall_ms", "api_wall_ms", "peak_rss_kb", "oracle"
            }
            assert timing["wall_ms"] >= timing["api_wall_ms"] >= 0.0
            rss = timing["peak_rss_kb"]
            assert rss is None or (isinstance(rss, int) and rss > 0)

    def test_oracle_deltas_match_cell_for_cell(self, runs):
        # the deterministic half of the sidecar: same cells, same order,
        # same cold caches => identical oracle counter deltas, however
        # the cells were transported
        pool_store, fleet_store, _ = runs
        for mine, theirs in zip(pool_store.timings(), fleet_store.timings()):
            assert mine["oracle"] == theirs["oracle"], mine["id"]

    def test_scheduled_cells_report_nonzero_envelope_time(self, runs):
        pool_store, _, _ = runs
        timings = {t["id"]: t for t in pool_store.timings()}
        for record in pool_store.records():
            if record["status"] == "ok" and record["rounds"]:
                assert timings[record["id"]]["api_wall_ms"] > 0.0
        # at least the oracle-backed schedulers must have left deltas
        assert any(t["oracle"] for t in timings.values())


class TestFleetTelemetry:
    def test_telemetry_accounts_for_every_cell(self, runs):
        _, _, telemetry = runs
        assert telemetry["finished"] is True
        assert telemetry["done"] == telemetry["total"] == N_CELLS
        [worker] = telemetry["workers"]
        assert worker["cells_done"] == N_CELLS
        assert worker["in_flight"] == 0
        assert worker["cells_per_s"] > 0

    def test_cell_walls_land_in_the_metrics_histogram(self, runs):
        # the coordinator observes each accepted cell's wall time into
        # the process collector, which /metrics renders
        histogram = global_collector().histogram("fabric.cell_wall_ms")
        assert histogram.total >= N_CELLS
