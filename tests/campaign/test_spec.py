"""Tests for campaign specs: validation, expansion, deterministic seeding."""

import pytest

from repro.campaign import CampaignSpec, derive_seed
from repro.campaign.families import build_unit, single_problem
from repro.campaign.schedulers import parse_properties, resolve
from repro.core.verify import Property
from repro.errors import CampaignSpecError

BASIC = {
    "name": "basic",
    "seed": 5,
    "families": [
        {"family": "reversal", "sizes": [6, 8]},
        {"family": "random-update", "sizes": [8], "repeats": 3},
    ],
    "schedulers": ["peacock", "oneshot"],
}


class TestValidation:
    def test_roundtrip(self):
        spec = CampaignSpec.from_dict(BASIC)
        again = CampaignSpec.from_dict(spec.to_dict())
        assert again.spec_hash == spec.spec_hash
        assert again.campaign_id == spec.campaign_id

    @pytest.mark.parametrize("mutation", [
        {"families": []},
        {"schedulers": []},
        {"families": [{"family": "no-such-family", "sizes": [5]}]},
        {"schedulers": ["no-such-scheduler"]},
        {"schedulers": ["combined:nope"]},
        {"families": [{"family": "reversal", "sizes": [2]}]},  # below min size
        {"families": [{"family": "reversal", "sizes": []}]},
        {"families": [{"family": "reversal", "sizes": [6], "bogus": 1}]},
        {"families": [{"family": "reversal", "sizes": [6],
                       "params": {"bogus": 1}}]},
        {"families": [{"family": "fat-tree", "sizes": [3]}]},  # odd arity
        {"seed": "not-an-int"},
        {"timeout_s": -1},
        {"version": 999},
        {"bogus_key": 1},
    ])
    def test_rejects_bad_specs(self, mutation):
        with pytest.raises(CampaignSpecError):
            CampaignSpec.from_dict({**BASIC, **mutation})

    def test_duplicate_family_entries_rejected_at_expand(self):
        spec = CampaignSpec.from_dict({
            **BASIC,
            "families": [
                {"family": "reversal", "sizes": [6]},
                {"family": "reversal", "sizes": [6]},
            ],
        })
        with pytest.raises(CampaignSpecError):
            spec.expand()

    def test_same_family_distinct_params_coexist(self):
        spec = CampaignSpec.from_dict({
            **BASIC,
            "families": [
                {"family": "random-update", "sizes": [10],
                 "params": {"overlap": 0.2}},
                {"family": "random-update", "sizes": [10],
                 "params": {"overlap": 0.8}},
            ],
        })
        cells = spec.expand()
        assert len(cells) == 4
        assert len({cell.cell_id for cell in cells}) == 4
        assert cells[0].seed != cells[2].seed  # different params, new seed


class TestExpansion:
    def test_cell_count_and_order(self):
        spec = CampaignSpec.from_dict(BASIC)
        cells = spec.expand()
        # (2 sizes + 1 size * 3 repeats) * 2 schedulers
        assert len(cells) == 10
        assert [cell.index for cell in cells] == list(range(10))
        assert cells[0].cell_id == "reversal-n6-r0@peacock"
        assert cells[1].cell_id == "reversal-n6-r0@oneshot"
        assert len({cell.cell_id for cell in cells}) == len(cells)

    def test_grid_cross_product(self):
        spec = CampaignSpec.from_dict({
            "name": "grid",
            "families": [{
                "family": "sawtooth",
                "sizes": [10, 14],
                "grid": {"block": [2, 4, 8]},
            }],
            "schedulers": ["peacock"],
        })
        cells = spec.expand()
        assert len(cells) == 6
        assert {cell.params["block"] for cell in cells} == {2, 4, 8}
        assert "sawtooth-block4-n10-r0@peacock" in {c.cell_id for c in cells}

    def test_per_entry_scheduler_override(self):
        spec = CampaignSpec.from_dict({
            "name": "override",
            "families": [
                {"family": "reversal", "sizes": [6]},
                {"family": "reversal", "sizes": [8],
                 "schedulers": ["optimal:rlf"]},
            ],
            "schedulers": ["peacock"],
        })
        schedulers = [cell.scheduler for cell in spec.expand()]
        assert schedulers == ["peacock", "optimal:rlf"]

    def test_seed_ignores_scheduler_but_not_repeat(self):
        spec = CampaignSpec.from_dict(BASIC)
        cells = spec.expand()
        by_id = {cell.cell_id: cell for cell in cells}
        assert (
            by_id["random-update-n8-r0@peacock"].seed
            == by_id["random-update-n8-r0@oneshot"].seed
        )
        assert (
            by_id["random-update-n8-r0@peacock"].seed
            != by_id["random-update-n8-r1@peacock"].seed
        )

    def test_campaign_seed_changes_cell_seeds(self):
        seeds_a = [c.seed for c in CampaignSpec.from_dict(BASIC).expand()]
        seeds_b = [
            c.seed
            for c in CampaignSpec.from_dict({**BASIC, "seed": 6}).expand()
        ]
        assert seeds_a != seeds_b

    def test_derive_seed_is_stable(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)
        assert derive_seed(1, "a", 2) != derive_seed(1, "a", 3)


class TestFamilies:
    def test_random_update_deterministic_per_seed(self):
        a = single_problem("random-update", 10, {}, 1234)
        b = single_problem("random-update", 10, {}, 1234)
        c = single_problem("random-update", 10, {}, 1235)
        assert a.old_path == b.old_path and a.new_path == b.new_path
        assert (a.old_path, a.new_path) != (c.old_path, c.new_path)

    def test_fat_tree_paths_share_endpoints(self):
        problem = single_problem("fat-tree", 4, {}, 99)
        assert problem.old_path.source == problem.new_path.source
        assert problem.old_path != problem.new_path

    def test_multipolicy_batch_is_isolated_and_mixed(self):
        unit = build_unit("multipolicy", 8, {"policies": 4}, 7)
        assert unit.batch and len(unit.problems) == 4
        node_sets = [set(p.nodes) for p in unit.problems]
        for i, nodes in enumerate(node_sets):
            for other in node_sets[i + 1:]:
                assert not (nodes & other)
        waypointed = [p.waypoint is not None for p in unit.problems]
        assert any(waypointed) and not all(waypointed)

    def test_single_problem_rejects_batch_family(self):
        with pytest.raises(CampaignSpecError):
            single_problem("multipolicy", 8, {}, 1)


class TestSchedulers:
    def test_combined_parses_properties(self):
        definition = resolve("combined:wpe+rlf+blackhole")
        assert definition.requires_waypoint

    def test_parse_properties(self):
        assert parse_properties("slf+blackhole") == (
            Property.SLF, Property.BLACKHOLE,
        )
        with pytest.raises(CampaignSpecError):
            parse_properties("bogus")

    def test_unknown_scheduler(self):
        with pytest.raises(CampaignSpecError):
            resolve("optimal:")
