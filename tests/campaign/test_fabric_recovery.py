"""Crash-recovery tests for the fabric coordinator and its journal.

The write-ahead journal's contract: any coordinator state transition
that was acknowledged survives a SIGKILL -- buffered out-of-order
shards are re-admitted (completed work is never re-run), retry and
escalation budgets carry over, pre-crash leases expire -- and a
recovered run stays byte-identical to an uncrashed one.  A "crash" here
is abandoning one Coordinator mid-flight and constructing a second over
the same run directory, exactly what a restarted ``repro campaign
serve`` does.
"""

import json
import socket
import threading
import time

import pytest

from repro.campaign import CampaignRunner, CampaignSpec
from repro.campaign.fabric import (
    Coordinator,
    FabricWorker,
    LocalClient,
    run_local_fleet,
)
from repro.campaign.fabric.journal import JOURNAL, SNAPSHOT, FabricJournal
from repro.campaign.runner import run_cell
from repro.errors import TransportError

SWEEP = {
    "name": "fabrec",
    "seed": 3,
    "families": [{"family": "reversal", "sizes": [4, 6], "repeats": 2}],
    "schedulers": ["peacock", "greedy-slf"],
}
N_CELLS = 8

#: One cell only, with a timeout budget: retry/escalation tests need the
#: lease to keep returning the *same* cell across backoffs.
TINY = {
    "name": "fabrec-tiny",
    "seed": 3,
    "timeout_s": 30,
    "families": [{"family": "reversal", "sizes": [4]}],
    "schedulers": ["peacock"],
}

FAST = dict(
    lease_ttl_s=0.25,
    lease_hard_ttl_factor=3.0,
    heartbeat_interval_s=0.05,
    backoff_base_s=0.01,
    backoff_cap_s=0.05,
)


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """The pool runner's byte-exact output for SWEEP (the ground truth)."""
    root = tmp_path_factory.mktemp("baseline")
    spec = CampaignSpec.from_dict(SWEEP)
    runner = CampaignRunner(spec, root=str(root), workers=1)
    runner.run()
    return runner.store.results_bytes()


def _coordinator(tmp_path, spec_dict=SWEEP, **options):
    merged = {**FAST, **options}
    return Coordinator(
        CampaignSpec.from_dict(spec_dict), root=str(tmp_path), **merged
    )


def _crash(coordinator):
    """Abandon a coordinator the way a SIGKILL would: release the file
    handles (so the test can reopen the directory) but flush nothing."""
    coordinator.store.close()
    coordinator._journal.close()


def _compute_all(coordinator, worker_id, n=N_CELLS):
    reply = coordinator.lease(worker_id, n)
    shards = [
        (payload["cell_id"], *run_cell(payload)) for payload in reply["cells"]
    ]
    return reply["lease_id"], shards


class TestJournalRecovery:
    def test_buffered_shards_survive_crash_byte_identical(
        self, tmp_path, baseline
    ):
        # submit cells 7..1 in reverse order: all seven accepts are
        # journaled but none can flush (cell 0 is missing), the worst
        # possible crash exposure
        first = _coordinator(tmp_path, lease_cells=N_CELLS)
        worker_id = first.register({"name": "doomed"})["worker_id"]
        lease_id, shards = _compute_all(first, worker_id)
        for cell_id, record, timing in reversed(shards[1:]):
            first.submit(worker_id, lease_id, cell_id, record, timing)
        assert first.store.status()["done"] == 0  # nothing flushed
        _crash(first)

        second = _coordinator(tmp_path, lease_cells=N_CELLS)
        assert second.counters["recovered_buffered"] == N_CELLS - 1
        assert second.counters["recovered_leases_expired"] == 1
        worker_id = second.register({"name": "finisher"})["worker_id"]
        reply = second.lease(worker_id, N_CELLS)
        assert len(reply["cells"]) == 1  # only cell 0 is still open
        cell_id, record, timing = (
            reply["cells"][0]["cell_id"],
            *run_cell(reply["cells"][0]),
        )
        second.submit(worker_id, reply["lease_id"], cell_id, record, timing)
        second.close()
        assert second.finished
        assert second.store.results_bytes() == baseline

    def test_recovered_coordinator_finishes_with_fleet(
        self, tmp_path, baseline
    ):
        first = _coordinator(tmp_path, lease_cells=4)
        worker_id = first.register({"name": "doomed"})["worker_id"]
        lease_id, shards = _compute_all(first, worker_id, n=4)
        for cell_id, record, timing in reversed(shards[1:]):
            first.submit(worker_id, lease_id, cell_id, record, timing)
        _crash(first)

        second = _coordinator(tmp_path, lease_cells=2)
        assert second.counters["recovered_buffered"] == 3
        run_local_fleet(second, 2)
        second.close()
        assert second.finished
        assert second.store.results_bytes() == baseline

    def test_retry_budget_carries_over(self, tmp_path):
        first = _coordinator(
            tmp_path, TINY, lease_cells=1, max_transient_retries=2
        )
        worker_id = first.register({"name": "w"})["worker_id"]
        reply = first.lease(worker_id, 1)
        cell_id = reply["cells"][0]["cell_id"]
        assert first.fail(worker_id, reply["lease_id"], cell_id, "boom")[
            "retried"
        ]
        _crash(first)

        second = _coordinator(
            tmp_path, TINY, lease_cells=1, max_transient_retries=2
        )
        assert second.counters["recovered_retries"] >= 1
        worker_id = second.register({"name": "w2"})["worker_id"]
        # attempt 1 happened before the crash; two more exhaust the budget
        for expect_retry in (True, False):
            reply = second.lease(worker_id, 1)
            while not reply["cells"]:  # backoff may not have elapsed yet
                time.sleep(0.02)
                reply = second.lease(worker_id, 1)
            assert reply["cells"][0]["cell_id"] == cell_id
            outcome = second.fail(
                worker_id, reply["lease_id"], cell_id, "boom"
            )
            assert outcome["retried"] is expect_retry
        record = next(
            r for r in second.store.records() if r["id"] == cell_id
        )
        assert record["status"] == "error"
        assert "gave up after 3 attempts" in record["detail"]
        second.close()

    def test_escalation_carries_over(self, tmp_path):
        first = _coordinator(
            tmp_path, TINY, lease_cells=1, escalation_factor=4.0
        )
        worker_id = first.register({"name": "w"})["worker_id"]
        reply = first.lease(worker_id, 1)
        payload = reply["cells"][0]
        old_timeout = payload["timeout_s"]
        record, timing = run_cell(payload)
        record["status"] = "timeout"
        out = first.submit(
            worker_id, reply["lease_id"], payload["cell_id"], record, timing
        )
        assert out.get("escalated")
        _crash(first)

        second = _coordinator(
            tmp_path, TINY, lease_cells=1, escalation_factor=4.0
        )
        assert second.counters["recovered_escalations"] == 1
        worker_id = second.register({"name": "w2"})["worker_id"]
        reply = second.lease(worker_id, 1)
        assert reply["cells"][0]["cell_id"] == payload["cell_id"]
        assert reply["cells"][0]["timeout_s"] == pytest.approx(
            old_timeout * 4.0
        )
        # a second timeout must not escalate again (the flag carried over)
        record2, timing2 = run_cell(reply["cells"][0])
        record2["status"] = "timeout"
        out = second.submit(
            worker_id,
            reply["lease_id"],
            payload["cell_id"],
            record2,
            timing2,
        )
        assert out["accepted"] and not out.get("escalated")
        second.close()

    def test_torn_tail_drops_only_last_record_and_releases_cell(
        self, tmp_path
    ):
        first = _coordinator(tmp_path, lease_cells=N_CELLS)
        worker_id = first.register({"name": "doomed"})["worker_id"]
        lease_id, shards = _compute_all(first, worker_id)
        for cell_id, record, timing in reversed(shards[5:]):
            first.submit(worker_id, lease_id, cell_id, record, timing)
        _crash(first)

        # tear the journal mid-record, as a death inside append() would:
        # the last accept loses its tail and must be dropped on recovery
        journal_path = first.store.directory / JOURNAL
        data = journal_path.read_bytes()
        lines = data.splitlines(keepends=True)
        assert len(lines) >= 2
        torn = lines[-1][: len(lines[-1]) // 2].rstrip(b"\n")
        journal_path.write_bytes(b"".join(lines[:-1]) + torn)

        second = _coordinator(tmp_path, lease_cells=N_CELLS)
        # three accepts journaled (cells 7,6,5 reversed -> last line was
        # cell 5's accept); the torn one is gone, the rest survive
        assert second.counters["recovered_buffered"] == 2
        worker_id = second.register({"name": "w"})["worker_id"]
        reply = second.lease(worker_id, N_CELLS)
        leased = {cell["cell_id"] for cell in reply["cells"]}
        assert shards[5][0] in leased  # the torn accept's cell re-leases
        assert len(leased) == N_CELLS - 2
        second.close()

    def test_compaction_bounds_journal_and_restart_is_clean(
        self, tmp_path, baseline
    ):
        coordinator = _coordinator(tmp_path, journal_compact_every=4)
        run_local_fleet(coordinator, 2)
        coordinator.close()
        assert coordinator.store.results_bytes() == baseline
        assert coordinator.counters["journal_compactions"] >= 1
        journal_path = coordinator.store.directory / JOURNAL
        tail = [
            line
            for line in journal_path.read_text().splitlines()
            if line.strip()
        ]
        assert len(tail) <= 4
        assert (coordinator.store.directory / SNAPSHOT).is_file()

        # a restart over the finished directory recovers nothing and is
        # immediately done
        again = _coordinator(tmp_path)
        assert again.finished
        assert again.counters["recovered_buffered"] == 0
        again.close()
        assert again.store.results_bytes() == baseline

    def test_snapshot_plus_journal_replay_skips_covered_seqs(self, tmp_path):
        journal = FabricJournal(tmp_path, compact_every=100)
        journal.append("retry", index=0, attempts=1)
        journal.append("retry", index=1, attempts=1)
        journal.compact({"cells": {"0": {"attempts": 1}}})
        journal.append("retry", index=2, attempts=2)
        journal.close()

        # crash between snapshot write and truncation: stuff pre-snapshot
        # records back into the journal; replay must skip them by seq
        journal_path = tmp_path / JOURNAL
        stale = json.dumps({"seq": 1, "kind": "retry", "index": 0,
                            "attempts": 9}) + "\n"
        journal_path.write_text(stale + journal_path.read_text())

        reopened = FabricJournal(tmp_path, compact_every=100)
        snapshot, records = reopened.load()
        assert snapshot == {"cells": {"0": {"attempts": 1}}}
        assert [r["seq"] for r in records] == [3]
        assert reopened.append("retry", index=3, attempts=1) == 4
        reopened.close()


class _OutageClient:
    """LocalClient wrapper with a switchable 'coordinator down' mode."""

    def __init__(self, coordinator):
        self._inner = LocalClient(coordinator)
        self.down = threading.Event()

    def _guard(self):
        if self.down.is_set():
            raise TransportError("coordinator is down")

    def __getattr__(self, verb):
        inner = getattr(self._inner, verb)

        def call(*args, **kwargs):
            self._guard()
            return inner(*args, **kwargs)

        return call


class TestWorkerReconnect:
    def test_worker_rides_out_outage_and_resubmits(self, tmp_path, baseline):
        coordinator = _coordinator(tmp_path, lease_cells=1)
        client = _OutageClient(coordinator)
        seen = []

        def run_and_kill_link(payload):
            result = run_cell(payload)
            seen.append(payload["cell_id"])
            if len(seen) == 2:
                client.down.set()  # outage lands between compute and submit
            return result

        worker = FabricWorker(
            client,
            name="rider",
            max_lease_cells=1,
            reconnect_base_s=0.02,
            reconnect_cap_s=0.05,
            max_offline_s=30.0,
            run_cell_fn=run_and_kill_link,
        )
        lifter = threading.Timer(0.4, client.down.clear)
        lifter.start()
        try:
            summary = worker.run()
        finally:
            lifter.cancel()
        coordinator.close()
        assert summary["reconnects"] >= 1
        assert not summary["gave_up_offline"]
        assert coordinator.finished
        assert coordinator.store.results_bytes() == baseline
        # the in-flight record was resubmitted, not recomputed
        assert seen.count(seen[1]) == 1

    def test_max_offline_budget_gives_up(self, tmp_path):
        coordinator = _coordinator(tmp_path, lease_cells=1)
        client = _OutageClient(coordinator)

        def lease_then_die(*args, **kwargs):
            # the coordinator goes down -- for good -- on the first pull
            client.down.set()
            raise TransportError("coordinator is down")

        client._inner.lease = lease_then_die
        worker = FabricWorker(
            client,
            name="quitter",
            max_lease_cells=1,
            reconnect_base_s=0.02,
            reconnect_cap_s=0.05,
            max_offline_s=0.3,
        )
        summary = worker.run()
        coordinator.close()
        assert summary["gave_up_offline"] is True
        assert summary["reconnects"] == 0
        assert not coordinator.finished


class TestDrainAndDeregister:
    def test_drain_finishes_inflight_requeues_rest_and_deregisters(
        self, tmp_path, baseline
    ):
        coordinator = _coordinator(tmp_path, lease_cells=N_CELLS)
        worker = None

        def run_and_drain(payload):
            worker.request_drain()  # SIGTERM arrives mid-cell
            return run_cell(payload)

        worker = FabricWorker(
            LocalClient(coordinator),
            name="drainer",
            max_lease_cells=N_CELLS,
            run_cell_fn=run_and_drain,
        )
        summary = worker.run()
        assert summary["drained"] is True
        assert summary["cells_done"] == 1  # finished the in-flight cell
        assert coordinator.counters["deregisters"] == 1
        # handing cells back burns no retry budget and leaves no leases
        assert coordinator.counters["transient_failures"] == 0
        assert coordinator.counters["retries"] == 0
        assert not coordinator._table.leases()

        run_local_fleet(coordinator, 2)
        coordinator.close()
        assert coordinator.finished
        assert coordinator.store.results_bytes() == baseline

    def test_deregister_requeues_leased_cells(self, tmp_path):
        coordinator = _coordinator(tmp_path, lease_cells=4)
        worker_id = coordinator.register({"name": "w"})["worker_id"]
        reply = coordinator.lease(worker_id, 4)
        assert len(reply["cells"]) == 4
        out = coordinator.deregister(worker_id)
        assert out["ok"] and out["requeued"] == 4
        # the cells are immediately leasable by someone else
        other = coordinator.register({"name": "other"})["worker_id"]
        assert len(coordinator.lease(other, N_CELLS)["cells"]) == N_CELLS
        coordinator.close()


class TestIntegrityRecovery:
    def test_quarantine_survives_double_restart(self, tmp_path, baseline):
        first = _coordinator(tmp_path, lease_cells=2)
        worker_id = first.register({"name": "shady"})["worker_id"]
        reply = first.lease(worker_id, 2)
        payload = reply["cells"][0]
        record, timing = run_cell(payload)
        out = first.submit(
            worker_id, reply["lease_id"], payload["cell_id"], record, timing,
            {"record_sha256": "0" * 64, "cell_hash": "0" * 64},
        )
        assert out["rejected"] and out["quarantined"]
        _crash(first)

        second = _coordinator(tmp_path, lease_cells=2)
        assert second.counters["recovered_quarantines"] == 1
        again = second.register({"name": "shady"})
        assert again["quarantined"] is True
        assert second.lease(again["worker_id"], 1)["quarantined"] is True
        _crash(second)

        # the recovery compacts a snapshot; replaying snapshot + journal
        # a second time must not double-count or un-quarantine anyone
        third = _coordinator(tmp_path, lease_cells=2)
        assert third.counters["recovered_quarantines"] == 1
        assert third.status()["fabric"]["quarantined_workers"] == ["shady"]
        run_local_fleet(third, 2)
        third.close()
        assert third.finished
        assert third.store.results_bytes() == baseline

    def test_audit_candidate_survives_restart(self, tmp_path, baseline):
        from repro.campaign.spec import payload_identity_hash
        from repro.campaign.store import record_checksum

        options = dict(lease_cells=1, audit_fraction=1.0)
        first = _coordinator(tmp_path, **options)
        worker_id = first.register({"name": "first"})["worker_id"]
        reply = first.lease(worker_id, 1)
        payload = reply["cells"][0]
        record, timing = run_cell(payload)
        out = first.submit(
            worker_id, reply["lease_id"], payload["cell_id"], record, timing,
            {
                "record_sha256": record_checksum(record),
                "cell_hash": payload_identity_hash(payload),
            },
        )
        assert out["accepted"] and out.get("audit_pending")
        _crash(first)

        # the lone candidate must come back and still await a second,
        # *different* worker's byte-identical re-execution
        second = _coordinator(tmp_path, **options)
        assert second.counters["recovered_audit_candidates"] == 1
        assert second.status()["fabric"]["audits_pending"] == 1
        auditor = second.register({"name": "auditor"})["worker_id"]
        reply = second.lease(auditor, 1)
        assert reply["cells"][0]["cell_id"] == payload["cell_id"]
        out = second.submit(
            auditor, reply["lease_id"], payload["cell_id"], record, timing,
            {
                "record_sha256": record_checksum(record),
                "cell_hash": payload_identity_hash(payload),
            },
        )
        assert out["accepted"] and not out.get("audit_pending")
        assert second.counters["audits_run"] == 1
        run_local_fleet(second, 2)
        second.close()
        assert second.finished
        assert second.store.results_bytes() == baseline
        assert second.counters["audit_mismatches"] == 0

    def test_poison_kills_accumulate_across_restart(self, tmp_path):
        options = dict(
            lease_cells=1,
            poison_kill_threshold=2,
            heartbeat_timeout_s=0.1,
        )
        first = _coordinator(tmp_path, TINY, **options)
        killer = first.register({"name": "k1"})["worker_id"]
        assert first.lease(killer, 1)["cells"]
        time.sleep(0.15)  # k1 dies holding the cell
        assert first.finished is False  # triggers the reap
        assert first.counters["kills"] == 1
        _crash(first)

        # kill #1 must carry over: one more distinct killer -- not two --
        # crosses the threshold after the restart
        second = _coordinator(tmp_path, TINY, **options)
        killer2 = second.register({"name": "k2"})["worker_id"]
        assert second.lease(killer2, 1)["cells"]
        time.sleep(0.15)
        assert second.finished is True  # reap -> kill #2 -> poisoned
        assert second.counters["poisoned_cells"] == 1
        _crash(second)

        third = _coordinator(tmp_path, TINY, **options)
        assert third.finished
        _crash(third)
        fourth = _coordinator(tmp_path, TINY, **options)
        assert fourth.finished
        fourth.close()
        records = fourth.store.records()
        assert len(records) == 1
        assert records[0]["status"] == "error"
        assert "poisoned: killed 2 distinct workers" in records[0]["detail"]


def _free_port():
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestHttpRestartEndToEnd:
    def test_worker_survives_coordinator_restart_over_http(
        self, tmp_path, baseline
    ):
        from repro.campaign.fabric import HttpFabricClient
        from repro.rest.api import build_campaign_api
        from repro.rest.http_binding import HttpClient, RestHttpServer

        spec = CampaignSpec.from_dict(SWEEP)
        root = str(tmp_path)
        port = _free_port()
        url = f"http://127.0.0.1:{port}"
        serve_body = {
            "spec": spec.to_dict(),
            "lease_ttl_s": 0.25,
            "heartbeat_interval_s": 0.05,
            "lease_cells": 1,
        }

        api1 = build_campaign_api(campaign_root=root)
        api1.campaigns.serve(serve_body)
        first = api1.campaigns.fabric(spec.campaign_id)
        server1 = RestHttpServer(api1, port=port)
        server1.start()

        worker = FabricWorker(
            HttpFabricClient(
                url,
                spec.campaign_id,
                http=HttpClient(
                    url,
                    max_attempts=2,
                    backoff_base_s=0.01,
                    backoff_cap_s=0.02,
                ),
            ),
            name="rider",
            max_lease_cells=1,
            reconnect_base_s=0.05,
            reconnect_cap_s=0.2,
            max_offline_s=30.0,
        )
        summaries = []
        thread = threading.Thread(
            target=lambda: summaries.append(worker.run()), daemon=True
        )
        thread.start()

        deadline = time.monotonic() + 30
        while first.status()["done"] < 2:
            assert time.monotonic() < deadline, "fleet never progressed"
            time.sleep(0.02)
        server1.stop()  # SIGKILL stand-in: mid-campaign, no goodbye
        api1.campaigns.close()

        time.sleep(0.2)
        api2 = build_campaign_api(campaign_root=root)
        api2.campaigns.serve(serve_body)  # recovery happens here
        second = api2.campaigns.fabric(spec.campaign_id)
        server2 = RestHttpServer(api2, port=port)
        server2.start()
        try:
            assert second.wait(timeout_s=60)
            thread.join(timeout=30)
        finally:
            server2.stop()
            api2.campaigns.close()
        assert summaries and summaries[0]["reconnects"] >= 1
        assert not summaries[0]["gave_up_offline"]
        assert second.store.results_bytes() == baseline
