"""Tests for the exception hierarchy and top-level package surface."""

import pytest

import repro
from repro import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        exception_types = [
            value
            for value in vars(errors).values()
            if isinstance(value, type) and issubclass(value, Exception)
        ]
        assert len(exception_types) > 15
        for exc_type in exception_types:
            assert issubclass(exc_type, errors.ReproError), exc_type

    def test_specific_parentage(self):
        assert issubclass(errors.PathError, errors.TopologyError)
        assert issubclass(errors.TableFullError, errors.SwitchError)
        assert issubclass(errors.WireFormatError, errors.OpenFlowError)
        assert issubclass(errors.ChannelClosedError, errors.ChannelError)
        assert issubclass(errors.VerificationBudgetError, errors.VerificationError)
        assert issubclass(errors.UnknownDatapathError, errors.ControllerError)

    def test_rest_errors_carry_status(self):
        assert errors.BadRequestError("x").status == 400
        assert errors.NotFoundError("x").status == 404
        assert errors.RestError("x").status == 500

    def test_one_catch_to_rule_them_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.ScheduleError("broken")


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_key_api_importable(self):
        from repro import (  # noqa: F401
            Path,
            Topology,
            UpdateProblem,
            UpdateSchedule,
            peacock_schedule,
            verify_schedule,
            wayup_schedule,
        )

    def test_subpackage_all_exports_resolve(self):
        import repro.channel
        import repro.controller
        import repro.core
        import repro.dataplane
        import repro.metrics
        import repro.netlab
        import repro.openflow
        import repro.rest
        import repro.sim
        import repro.switch
        import repro.topology

        for module in (
            repro.channel, repro.controller, repro.core, repro.dataplane,
            repro.metrics, repro.netlab, repro.openflow, repro.rest,
            repro.sim, repro.switch, repro.topology,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"
