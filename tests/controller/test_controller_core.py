"""Tests for the controller runtime: handshake, dispatch, datapaths."""

import random

import pytest

from repro.channel.base import ControlChannel
from repro.controller.app import RyuLikeApp
from repro.controller.core import Controller
from repro.errors import ControllerError, UnknownDatapathError
from repro.openflow.flowmod import add_flow
from repro.openflow.match import Match
from repro.openflow.messages import BarrierRequest
from repro.sim.simulator import Simulator
from repro.switch.datapath import SwitchSim


class RecordingApp(RyuLikeApp):
    name = "recorder"

    def __init__(self):
        super().__init__()
        self.connected = []
        self.barriers = []
        self.errors = []

    def on_datapath_connected(self, datapath):
        self.connected.append(datapath.dpid)

    def on_barrier_reply(self, datapath, message):
        self.barriers.append((datapath.dpid, message.xid))

    def on_error(self, datapath, message):
        self.errors.append((datapath.dpid, message))


@pytest.fixture
def rig():
    """Controller + two switches over independent channels."""
    sim = Simulator()
    controller = Controller(sim)
    app = controller.register_app(RecordingApp())
    switches = {}
    for dpid in (1, 2):
        channel = ControlChannel(sim, latency=1.0, rng=random.Random(dpid))
        switches[dpid] = SwitchSim(sim, dpid=dpid, channel=channel)
        controller.connect_switch(channel)
    sim.run()
    return sim, controller, app, switches


class TestHandshake:
    def test_both_switches_connect(self, rig):
        _, controller, app, _ = rig
        assert controller.connected_dpids == [1, 2]
        assert sorted(app.connected) == [1, 2]

    def test_datapath_lookup(self, rig):
        _, controller, _, _ = rig
        assert controller.datapath(1).dpid == 1
        with pytest.raises(UnknownDatapathError):
            controller.datapath(99)

    def test_xids_unique(self, rig):
        _, controller, _, _ = rig
        xids = {controller.next_xid() for _ in range(100)}
        assert len(xids) == 100


class TestDispatch:
    def test_barrier_reply_routed_to_app(self, rig):
        sim, controller, app, _ = rig
        xid = controller.datapath(1).send_barrier()
        sim.run()
        assert app.barriers == [(1, xid)]

    def test_flowmod_applied_on_switch(self, rig):
        sim, controller, _, switches = rig
        controller.datapath(2).send_msg(add_flow(Match(in_port=1), out_port=3))
        sim.run()
        assert switches[2].flow_count() == 1
        assert switches[1].flow_count() == 0

    def test_error_routed(self, rig):
        sim, controller, app, _ = rig
        bad = add_flow(Match(in_port=1), out_port=3)
        bad.table_id = 99
        controller.datapath(1).send_msg(bad)
        sim.run()
        assert app.errors and app.errors[0][0] == 1

    def test_send_assigns_xid(self, rig):
        _, controller, _, _ = rig
        message = BarrierRequest()
        xid = controller.datapath(1).send_msg(message)
        assert xid != 0 and message.xid == xid

    def test_explicit_xid_preserved(self, rig):
        _, controller, _, _ = rig
        message = BarrierRequest(xid=777)
        assert controller.datapath(1).send_msg(message) == 777


class TestAppManagement:
    def test_get_app(self, rig):
        _, controller, app, _ = rig
        assert controller.get_app(RecordingApp) is app
        with pytest.raises(ControllerError):
            controller.get_app(str)

    def test_disconnect(self, rig):
        sim, controller, _, _ = rig
        controller.disconnect_switch(1)
        assert controller.connected_dpids == [2]
        with pytest.raises(UnknownDatapathError):
            controller.disconnect_switch(1)
