"""Tests for the ofctl_rest baseline app and the paper's update app."""

import pytest

from repro.controller.ofctl_rest import OfctlRestApp
from repro.controller.ofctl_rest_own import TransientUpdateApp
from repro.controller.update_queue import UpdateQueueApp
from repro.core.registry import REGISTRY, resolve_scheduler
from repro.core.verify import Property
from repro.errors import BadRequestError
from repro.netlab.figure1 import figure1_problem
from repro.netlab.network import Network
from repro.openflow.match import Match
from repro.topology.builders import figure1


@pytest.fixture
def rig():
    network = Network(figure1(with_hosts=True), seed=0)
    queue = UpdateQueueApp()
    ofctl = OfctlRestApp()
    update_app = TransientUpdateApp(
        network.topo,
        queue,
        default_match=Match(eth_type=0x0800, ipv4_dst="10.0.0.2"),
    )
    network.controller.register_app(queue)
    network.controller.register_app(ofctl)
    network.controller.register_app(update_app)
    network.start()
    return network, queue, ofctl, update_app


def _update_request(**extra):
    problem = figure1_problem()
    request = {
        "oldpath": list(problem.old_path.nodes),
        "newpath": list(problem.new_path.nodes),
        "wp": problem.waypoint,
        "interval": 0,
    }
    request.update(extra)
    return request


class TestOfctlRest:
    def test_add_flow_entry(self, rig):
        network, _, ofctl, _ = rig
        result = ofctl.flowentry_add(
            {"dpid": 1, "match": {"in_port": 1},
             "actions": [{"type": "OUTPUT", "port": 2}]}
        )
        network.flush()
        assert result["dpid"] == 1
        assert network.switch(1).flow_count() == 1

    def test_delete_flow_entry(self, rig):
        network, _, ofctl, _ = rig
        ofctl.flowentry_add(
            {"dpid": 1, "match": {"in_port": 1},
             "actions": [{"type": "OUTPUT", "port": 2}]}
        )
        network.flush()
        ofctl.flowentry_delete({"dpid": 1, "match": {"in_port": 1}})
        network.flush()
        assert network.switch(1).flow_count() == 0

    def test_requires_dpid(self, rig):
        _, _, ofctl, _ = rig
        with pytest.raises(BadRequestError):
            ofctl.flowentry_add({"match": {}})

    def test_switches_listed(self, rig):
        _, _, ofctl, _ = rig
        assert len(ofctl.switches()) == 12

    def test_flow_stats_future(self, rig):
        network, _, ofctl, _ = rig
        ofctl.flowentry_add(
            {"dpid": 2, "priority": 9, "match": {"in_port": 1},
             "actions": [{"type": "OUTPUT", "port": 2}]}
        )
        network.flush()
        future = ofctl.flow_stats(2)
        assert not future.done
        network.flush()
        assert future.done
        entries = future.result().entries
        assert entries[0].priority == 9


class TestTransientUpdateApp:
    def test_wayup_update_executes(self, rig):
        network, queue, _, update_app = rig
        summary = update_app.submit_update(_update_request(algorithm="wayup"))
        network.flush()
        assert summary["verified"] is True
        assert summary["rounds"] == 5
        execution = queue.find_completed(summary["update_id"])
        assert execution.done and not execution.errors

    def test_all_registered_algorithms_run(self, rig):
        network, queue, _, update_app = rig
        for algorithm in REGISTRY.plain_names():
            summary = update_app.submit_update(_update_request(algorithm=algorithm))
            network.flush()
            assert queue.find_completed(summary["update_id"]).done, algorithm

    def test_alias_resolves_to_canonical_name(self, rig):
        network, _, _, update_app = rig
        summary = update_app.submit_update(_update_request(algorithm="greedy_slf"))
        network.flush()
        assert summary["algorithm"] == "greedy-slf"

    def test_two_phase_runs(self, rig):
        network, queue, _, update_app = rig
        summary = update_app.submit_update(_update_request(algorithm="two-phase"))
        network.flush()
        assert summary["verified"] == "by-construction"
        assert queue.find_completed(summary["update_id"]).done

    def test_unknown_algorithm_rejected(self, rig):
        _, _, _, update_app = rig
        with pytest.raises(BadRequestError, match="unknown algorithm"):
            update_app.submit_update(_update_request(algorithm="magic"))

    def test_known_scheduler_bad_spec_keeps_precise_message(self, rig):
        _, _, _, update_app = rig
        with pytest.raises(BadRequestError, match="needs a property list"):
            update_app.submit_update(_update_request(algorithm="optimal"))
        with pytest.raises(BadRequestError, match="does not accept params"):
            update_app.submit_update(_update_request(algorithm="peacock?bogus=1"))

    def test_missing_paths_rejected(self, rig):
        _, _, _, update_app = rig
        with pytest.raises(BadRequestError):
            update_app.submit_update({"newpath": [1, 2]})

    def test_bad_problem_rejected(self, rig):
        _, _, _, update_app = rig
        with pytest.raises(BadRequestError):
            update_app.submit_update(
                {"oldpath": [1, 2, 3], "newpath": [2, 1, 3]}
            )

    def test_oneshot_reports_unverified(self, rig):
        network, _, _, update_app = rig
        summary = update_app.submit_update(_update_request(algorithm="oneshot"))
        network.flush()
        assert summary["verified"] is False
        assert summary["violations"]

    def test_peacock_verified_for_rlf(self, rig):
        network, _, _, update_app = rig
        summary = update_app.submit_update(_update_request(algorithm="peacock"))
        network.flush()
        assert summary["verified"] is True
        assert "relaxed-loop-freedom" in summary["verified_properties"]

    def test_body_overrides_respected(self, rig):
        network, queue, _, update_app = rig
        override = {
            "dpid": 3,
            "priority": 123,
            "match": {"eth_type": 0x0800, "ipv4_dst": "10.0.0.2"},
            "actions": [{"type": "OUTPUT", "port": 1}],
        }
        summary = update_app.submit_update(
            _update_request(algorithm="wayup", add=[override])
        )
        network.flush()
        dump = network.switch(3).dump_flows()
        assert any(entry["priority"] == 123 for entry in dump)

    def test_override_for_unscheduled_dpid_rejected(self, rig):
        _, _, _, update_app = rig
        override = {"dpid": 11, "actions": [{"type": "OUTPUT", "port": 1}]}
        with pytest.raises(BadRequestError, match="no round"):
            update_app.submit_update(_update_request(add=[override]))


class TestContracts:
    def test_registry_guarantees(self):
        assert Property.WPE in resolve_scheduler("wayup").guarantee
        assert Property.RLF in resolve_scheduler("peacock").guarantee
        assert Property.SLF in resolve_scheduler("greedy-slf").guarantee
        assert resolve_scheduler("oneshot").guarantee == ()
