"""Tests for schedule compilation and the paper's round FSM."""

import pytest

from repro.controller.rules import (
    compile_initial_rules,
    compile_schedule,
    compile_two_phase,
)
from repro.controller.update_queue import UpdateQueueApp
from repro.core.problem import UpdateProblem
from repro.core.twophase import NEW_VERSION_TAG, two_phase_schedule
from repro.core.wayup import wayup_schedule
from repro.errors import ScenarioError
from repro.netlab.figure1 import figure1_problem
from repro.netlab.network import Network
from repro.openflow.constants import FlowModCommand
from repro.openflow.match import Match
from repro.topology.builders import figure1


@pytest.fixture
def topo():
    return figure1(with_hosts=True)


@pytest.fixture
def problem():
    return figure1_problem()


@pytest.fixture
def match():
    return Match(eth_type=0x0800, ipv4_dst="10.0.0.2")


class TestCompileSchedule:
    def test_rounds_match_schedule(self, topo, problem, match):
        schedule = wayup_schedule(problem)
        compiled = compile_schedule(topo, schedule, match)
        assert len(compiled.rounds) == schedule.n_rounds
        for compiled_round, nodes in zip(compiled.rounds, schedule.rounds):
            assert set(compiled_round.mods_by_dpid) == set(nodes)

    def test_switch_nodes_get_adds_toward_new_path(self, topo, problem, match):
        schedule = wayup_schedule(problem)
        compiled = compile_schedule(topo, schedule, match)
        # node 3 (waypoint) switches to its new next hop 7
        round_index = schedule.round_of(3)
        mods = compiled.rounds[round_index].mods_by_dpid[3]
        assert mods[0].command is FlowModCommand.ADD
        assert mods[0].output_ports() == [topo.port_between(3, 7)]

    def test_delete_nodes_get_strict_deletes(self, topo, problem, match):
        schedule = wayup_schedule(problem)
        compiled = compile_schedule(topo, schedule, match)
        cleanup_index = schedule.round_of(4)
        mods = compiled.rounds[cleanup_index].mods_by_dpid[4]
        assert mods[0].command is FlowModCommand.DELETE_STRICT

    def test_missing_link_rejected(self, match):
        from repro.topology.builders import linear

        problem = UpdateProblem([1, 2, 3], [1, 3])
        schedule = wayup_schedule  # not used; compile directly
        from repro.core.oneshot import oneshot_schedule

        with pytest.raises(ScenarioError, match="missing"):
            compile_schedule(linear(3), oneshot_schedule(problem), match)

    def test_total_mods(self, topo, problem, match):
        schedule = wayup_schedule(problem)
        compiled = compile_schedule(topo, schedule, match)
        assert compiled.total_mods() == schedule.total_updates()


class TestCompileInitial:
    def test_old_path_rules(self, topo, problem, match):
        mods = compile_initial_rules(topo, problem, match, egress_port=7)
        # every old-path forwarding node gets one rule; d gets the egress
        for node, successor in problem.old_path.edges():
            assert mods[node][0].output_ports() == [topo.port_between(node, successor)]
        assert mods[problem.destination][0].output_ports() == [7]


class TestCompileTwoPhase:
    def test_phases(self, topo, problem, match):
        plan = two_phase_schedule(problem)
        compiled = compile_two_phase(topo, plan, match)
        assert len(compiled.rounds) == 3

    def test_prepared_rules_are_tagged(self, topo, problem, match):
        plan = two_phase_schedule(problem)
        compiled = compile_two_phase(topo, plan, match)
        for mods in compiled.rounds[0].mods_by_dpid.values():
            for mod in mods:
                assert mod.match.vlan_vid == NEW_VERSION_TAG

    def test_ingress_pushes_tag(self, topo, problem, match):
        plan = two_phase_schedule(problem)
        compiled = compile_two_phase(topo, plan, match)
        (ingress_mod,) = compiled.rounds[1].mods_by_dpid[problem.source]
        kinds = [type(a).__name__ for a in ingress_mod.instructions[0].actions]
        assert kinds == ["PushVlanAction", "SetFieldAction", "OutputAction"]

    def test_last_hop_pops_tag(self, topo, problem, match):
        plan = two_phase_schedule(problem)
        compiled = compile_two_phase(topo, plan, match)
        last = problem.new_path.prev_hop(problem.destination)
        (mod,) = compiled.rounds[0].mods_by_dpid[last]
        kinds = [type(a).__name__ for a in mod.instructions[0].actions]
        assert kinds[0] == "PopVlanAction"


class TestUpdateQueueFSM:
    def _network(self):
        network = Network(figure1(with_hosts=True), seed=0)
        queue = UpdateQueueApp()
        network.controller.register_app(queue)
        network.start()
        return network, queue

    def test_rounds_execute_in_order(self, problem, match):
        network, queue = self._network()
        schedule = wayup_schedule(problem)
        compiled = compile_schedule(network.topo, schedule, match)
        rounds_seen = []
        queue.on_round_complete.append(lambda e: rounds_seen.append(e.round_index))
        execution = queue.submit(compiled)
        network.flush()
        assert execution.done
        assert rounds_seen == list(range(schedule.n_rounds))
        assert execution.duration_ms > 0

    def test_round_barrier_fencing(self, problem, match):
        """Rules of round r are all applied before round r+1's are sent."""
        network, queue = self._network()
        schedule = wayup_schedule(problem)
        compiled = compile_schedule(network.topo, schedule, match)
        applied_at: dict[int, float] = {}

        round_end_times: list[float] = []
        queue.on_round_complete.append(
            lambda e: round_end_times.append(network.sim.now)
        )
        queue.submit(compiled)
        network.flush()
        # every switch's flowmod count matches, and barrier counts too
        for node in schedule.scheduled_nodes():
            assert network.switch(node).log.flow_mods_applied >= 1
        assert round_end_times == sorted(round_end_times)

    def test_queue_processes_messages_in_order(self, problem, match):
        network, queue = self._network()
        schedule = wayup_schedule(problem)
        compiled = compile_schedule(network.topo, schedule, match)
        first = queue.submit(compiled)
        # resubmitting the same rules is idempotent at the switch level
        second = queue.submit(compiled)
        network.flush()
        assert first.done and second.done
        assert first.finished_ms <= second.started_ms

    def test_completion_event(self, problem, match):
        network, queue = self._network()
        compiled = compile_schedule(network.topo, wayup_schedule(problem), match)
        events = []
        queue.on_update_complete.append(events.append)
        queue.submit(compiled, update_id="my-update")
        network.flush()
        assert events[0].update_id == "my-update"
        assert queue.find_completed("my-update").n_rounds == len(compiled.rounds)

    def test_interval_spacing(self, problem, match):
        network, queue = self._network()
        compiled = compile_schedule(network.topo, wayup_schedule(problem), match)
        fast = queue.submit(compiled)
        network.flush()
        network2, queue2 = self._network()
        compiled2 = compile_schedule(network2.topo, wayup_schedule(problem), match)
        slow = queue2.submit(compiled2, interval_ms=50.0)
        network2.flush()
        assert slow.duration_ms > fast.duration_ms + 100.0

    def test_find_completed_unknown(self):
        network, queue = self._network()
        with pytest.raises(Exception):
            queue.find_completed("nope")


class TestRoundTimingDump:
    def test_finished_round_dumps_fully(self):
        from repro.controller.update_queue import RoundTiming

        timing = RoundTiming(index=2, started_ms=10.0, finished_ms=16.5)
        assert timing.to_dict() == {
            "index": 2,
            "started_ms": 10.0,
            "finished_ms": 16.5,
            "duration_ms": 6.5,
            "running": False,
        }

    def test_running_round_dumps_partially(self):
        from repro.controller.update_queue import RoundTiming
        from repro.errors import ControllerError

        timing = RoundTiming(index=0, started_ms=3.0)
        assert timing.running
        dump = timing.to_dict()
        assert dump["finished_ms"] is None
        assert dump["duration_ms"] is None  # no ControllerError mid-round
        assert dump["running"] is True
        with pytest.raises(ControllerError):
            _ = timing.duration_ms  # the strict accessor still refuses

    def test_dump_is_json_serializable(self):
        import json

        from repro.controller.update_queue import RoundTiming

        running = RoundTiming(index=1, started_ms=0.5)
        finished = RoundTiming(index=1, started_ms=0.5, finished_ms=2.0)
        text = json.dumps([running.to_dict(), finished.to_dict()])
        assert json.loads(text)[1]["duration_ms"] == 1.5
