"""Tests for the echo-based monitoring app."""

import pytest

from repro.channel.latency_models import Constant, Uniform
from repro.controller.monitoring import MonitoringApp, RttStats
from repro.netlab.network import Network
from repro.topology.builders import linear


def _monitored_network(latency="1.0", interval_ms=5.0, max_probes=0):
    network = Network(linear(3), seed=0, channel_latency=latency)
    app = MonitoringApp(interval_ms=interval_ms, max_probes=max_probes)
    network.controller.register_app(app)
    network.start()
    return network, app


class TestRttStats:
    def test_mean_and_max(self):
        stats = RttStats()
        for value in (1.0, 2.0, 3.0):
            stats.record(value)
        assert stats.count == 3
        assert stats.mean_ms() == 2.0
        assert stats.max_ms() == 3.0

    def test_empty(self):
        stats = RttStats()
        assert stats.mean_ms() == 0.0 and stats.max_ms() == 0.0


class TestProbing:
    def test_single_probe_measures_rtt(self):
        network, app = _monitored_network(latency="2.0", interval_ms=0)
        app.probe(network.controller.datapath(1))
        network.flush()
        stats = app.rtt[1]
        assert stats.count == 1
        # 2 ms out + switch processing + 2 ms back
        assert stats.samples[0] == pytest.approx(4.0, abs=0.2)

    def test_probe_all(self):
        network, app = _monitored_network(interval_ms=0)
        assert app.probe_all() == 3
        network.flush()
        assert sorted(app.rtt) == [1, 2, 3]

    def test_periodic_loop_bounded(self):
        network, app = _monitored_network(interval_ms=5.0, max_probes=9)
        app.start()
        network.flush()
        total = sum(stats.count for stats in app.rtt.values())
        assert total == 9  # 3 switches x 3 rounds, then self-stops

    def test_start_requires_interval(self):
        network, app = _monitored_network(interval_ms=0)
        app.start()  # no-op, must not schedule anything
        network.flush()
        assert not app.rtt

    def test_stop_halts_loop(self):
        network, app = _monitored_network(interval_ms=5.0)
        app.start()
        app.stop()
        network.flush()
        total = sum(stats.count for stats in app.rtt.values())
        assert total <= 3  # at most the first burst

    def test_estimate_tracks_channel(self):
        network, app = _monitored_network(
            latency=Uniform(0.5, 2.5), interval_ms=2.0, max_probes=60
        )
        app.start()
        network.flush()
        # one-way mean 1.5 => RTT about 3
        assert app.estimated_rtt_ms() == pytest.approx(3.0, rel=0.35)

    def test_slowest_switch(self):
        network = Network(linear(2), seed=0, channel_latency="1.0")
        # make switch 2's channel slower by direct substitution
        network.channels[2].latency = Constant(10.0)
        app = MonitoringApp(interval_ms=0)
        network.controller.register_app(app)
        network.start()
        app.probe_all()
        network.flush()
        dpid, rtt = app.slowest_switch()
        assert dpid == 2 and rtt > 15.0

    def test_slowest_empty(self):
        network, app = _monitored_network(interval_ms=0)
        assert app.slowest_switch() is None
        assert app.estimated_rtt_ms() == 0.0

    def test_disconnect_clears_stats(self):
        network, app = _monitored_network(interval_ms=0)
        app.probe_all()
        network.flush()
        network.controller.disconnect_switch(2)
        assert 2 not in app.rtt


class TestCostModelIntegration:
    def test_measured_rtt_feeds_cost_model(self):
        from repro.core.cost import CostModel, schedule_update_time
        from repro.core.wayup import wayup_schedule
        from repro.netlab.figure1 import figure1_problem, run_figure1

        network, app = _monitored_network(latency="1.5", interval_ms=2.0,
                                          max_probes=30)
        app.start()
        network.flush()
        measured_rtt = app.estimated_rtt_ms()
        schedule = wayup_schedule(figure1_problem())
        predicted = schedule_update_time(
            schedule, CostModel(rtt_ms=measured_rtt, install_ms=0.3,
                                barrier_ms=0.05)
        )
        result = run_figure1(algorithm="wayup", seed=1, channel_latency="1.5")
        assert predicted == pytest.approx(result.update_duration_ms, rel=0.25)
