"""Tests for the control-plane trace recorder."""

import json

import pytest

from repro.controller.trace import ControlPlaneTrace
from repro.netlab.figure1 import build_figure1_scenario


@pytest.fixture
def traced_run():
    scenario = build_figure1_scenario(algorithm="wayup", seed=1)
    trace = ControlPlaneTrace().attach(scenario.network)
    result = scenario.run()
    return scenario, trace, result


class TestRecording:
    def test_records_handshake_and_update(self, traced_run):
        _, trace, _ = traced_run
        assert len(trace) > 50
        assert trace.of_type("HELLO")
        assert trace.of_type("FEATURES_REPLY")
        assert trace.of_type("FLOW_MOD")
        assert trace.of_type("BARRIER_REQUEST")
        assert trace.of_type("BARRIER_REPLY")

    def test_times_monotone(self, traced_run):
        _, trace, _ = traced_run
        times = [entry.time_ms for entry in trace.entries]
        assert times == sorted(times)

    def test_barrier_fencing_invariant(self, traced_run):
        scenario, trace, _ = traced_run
        for dpid in scenario.network.topo.switches():
            assert trace.flow_mods_before_barrier(dpid), dpid

    def test_rounds_observed_match_schedule(self, traced_run):
        scenario, trace, result = traced_run
        from repro.core.wayup import wayup_schedule
        from repro.netlab.figure1 import figure1_problem

        schedule = wayup_schedule(figure1_problem())
        # every updated switch sees exactly one barrier per round it's in
        for node in schedule.scheduled_nodes():
            rounds_with_node = sum(1 for r in schedule.rounds if node in r)
            assert trace.rounds_observed(node) == rounds_with_node

    def test_attach_idempotent(self):
        scenario = build_figure1_scenario(algorithm="wayup", seed=2)
        trace = ControlPlaneTrace()
        trace.attach(scenario.network)
        trace.attach(scenario.network)
        scenario.prepare()
        hellos = trace.of_type("HELLO")
        # one HELLO out + one back per switch, not doubled
        assert len(hellos) == 24

    def test_per_switch_filter(self, traced_run):
        _, trace, _ = traced_run
        entries = trace.for_switch(3)
        assert entries and all(e.dpid == 3 for e in entries)

    def test_jsonl_export(self, traced_run, tmp_path):
        _, trace, _ = traced_run
        path = tmp_path / "trace.jsonl"
        trace.dump_jsonl(str(path))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == len(trace)
        first = json.loads(lines[0])
        assert {"time_ms", "dpid", "direction", "type", "xid"} <= set(first)

    def test_explains_violation_ordering(self):
        """The trace shows the one-shot failure: flow mods land unordered."""
        scenario = build_figure1_scenario(
            algorithm="oneshot", seed=3, channel_latency="uniform:0.5:8"
        )
        trace = ControlPlaneTrace().attach(scenario.network)
        result = scenario.run()
        mods = trace.of_type("FLOW_MOD")
        # all mods sent in one burst: same send time, no fencing between
        send_times = {round(e.time_ms, 3) for e in mods}
        assert len(send_times) <= 2  # initial rules burst + update burst
        assert result.verified is False
