"""Tests for the packet pipeline and the simulated switch."""

import pytest

from repro.channel.base import ControlChannel
from repro.dataplane.packets import Packet
from repro.errors import SwitchError
from repro.openflow.actions import (
    ApplyActions,
    GotoTable,
    OutputAction,
    PopVlanAction,
    PushVlanAction,
    SetFieldAction,
    WriteActions,
)
from repro.openflow.constants import ErrorType, FlowModFailedCode
from repro.openflow.flowmod import FlowMod, add_flow, delete_flow
from repro.openflow.match import Match
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMsg,
    FeaturesReply,
    FeaturesRequest,
    Hello,
)
from repro.openflow.stats import FlowStatsReply, FlowStatsRequest
from repro.sim.simulator import Simulator
from repro.switch.datapath import SwitchSim
from repro.switch.flow_table import FlowTable
from repro.switch.latency import OVS_PROFILE, SwitchTimingProfile
from repro.switch.pipeline import Pipeline
from repro.channel.latency_models import Constant


class TestPipeline:
    def _single_table(self, *mods, miss="drop"):
        table = FlowTable()
        for mod in mods:
            table.apply_flow_mod(mod)
        return Pipeline([table], miss_behavior=miss)

    def test_forward(self):
        pipeline = self._single_table(add_flow(Match(in_port=1), out_port=7))
        result = pipeline.process(Packet(), in_port=1)
        assert result.forwarded and result.out_ports == [7]

    def test_miss_drop(self):
        pipeline = self._single_table(add_flow(Match(in_port=1), out_port=7))
        result = pipeline.process(Packet(), in_port=9)
        assert result.dropped and not result.punt

    def test_miss_punt(self):
        pipeline = self._single_table(
            add_flow(Match(in_port=1), out_port=7), miss="controller"
        )
        result = pipeline.process(Packet(), in_port=9)
        assert result.punt and not result.dropped

    def test_set_field_rewrites(self):
        mod = FlowMod(
            match=Match(in_port=1),
            instructions=(
                ApplyActions([
                    SetFieldAction("ipv4_dst", "10.9.9.9"),
                    OutputAction(port=2),
                ]),
            ),
        )
        pipeline = self._single_table(mod)
        result = pipeline.process(Packet(), in_port=1)
        assert result.packet.ipv4_dst == "10.9.9.9"

    def test_vlan_push_pop(self):
        push = FlowMod(
            match=Match(in_port=1),
            instructions=(
                ApplyActions([
                    PushVlanAction(),
                    SetFieldAction("vlan_vid", 2),
                    OutputAction(port=2),
                ]),
            ),
        )
        pipeline = self._single_table(push)
        result = pipeline.process(Packet(), in_port=1)
        assert result.packet.vlan_vid == 2
        pop = FlowMod(
            match=Match(in_port=1, vlan_vid=2),
            priority=100,
            instructions=(ApplyActions([PopVlanAction(), OutputAction(port=3)]),),
        )
        pipeline = self._single_table(pop)
        result = pipeline.process(result.packet, in_port=1)
        assert result.packet.vlan_vid is None
        assert result.out_ports == [3]

    def test_multi_table_goto(self):
        t0, t1 = FlowTable(table_id=0), FlowTable(table_id=1)
        t0.apply_flow_mod(
            FlowMod(match=Match(in_port=1), instructions=(GotoTable(table_id=1),))
        )
        t1.apply_flow_mod(add_flow(Match(), out_port=5, table_id=1))
        result = Pipeline([t0, t1]).process(Packet(), in_port=1)
        assert result.out_ports == [5]
        assert len(result.matched) == 2

    def test_goto_must_move_forward(self):
        t0, t1 = FlowTable(0), FlowTable(1)
        t1.apply_flow_mod(
            FlowMod(match=Match(), instructions=(GotoTable(table_id=1),))
        )
        t0.apply_flow_mod(
            FlowMod(match=Match(), instructions=(GotoTable(table_id=1),))
        )
        with pytest.raises(SwitchError, match="forward"):
            Pipeline([t0, t1]).process(Packet(), in_port=1)

    def test_write_actions_applied_at_end(self):
        t0, t1 = FlowTable(0), FlowTable(1)
        t0.apply_flow_mod(
            FlowMod(
                match=Match(),
                instructions=(
                    WriteActions([OutputAction(port=9)]),
                    GotoTable(table_id=1),
                ),
            )
        )
        t1.apply_flow_mod(FlowMod(match=Match(), instructions=()))
        result = Pipeline([t0, t1]).process(Packet(), in_port=1)
        assert result.out_ports == [9]

    def test_bad_miss_behavior(self):
        with pytest.raises(SwitchError):
            Pipeline([FlowTable()], miss_behavior="explode")


class _Harness:
    """A switch wired to a recording controller side."""

    def __init__(self, timing: SwitchTimingProfile = OVS_PROFILE):
        self.sim = Simulator()
        self.channel = ControlChannel(self.sim, latency=Constant(1.0))
        self.received: list = []
        self.channel.bind_controller(self.received.append)
        self.switch = SwitchSim(self.sim, dpid=42, channel=self.channel, timing=timing)

    def send(self, *messages):
        for message in messages:
            self.channel.to_switch(message)
        self.sim.run()


class TestSwitchControlPlane:
    def test_handshake(self):
        h = _Harness()
        h.send(Hello(xid=1), FeaturesRequest(xid=2))
        kinds = [type(m) for m in h.received]
        assert kinds == [Hello, FeaturesReply]
        assert h.received[1].datapath_id == 42
        assert h.switch.connected

    def test_echo(self):
        h = _Harness()
        h.send(EchoRequest(xid=3, data=b"hi"))
        assert isinstance(h.received[0], EchoReply)
        assert h.received[0].data == b"hi"

    def test_flowmod_then_barrier_ordering(self):
        h = _Harness()
        h.send(
            add_flow(Match(in_port=1), out_port=2).with_xid(1),
            BarrierRequest(xid=9),
        )
        # barrier reply must come after the flowmod was applied
        assert isinstance(h.received[-1], BarrierReply)
        assert h.received[-1].xid == 9
        assert h.switch.flow_count() == 1

    def test_barrier_waits_for_slow_installs(self):
        slow = SwitchTimingProfile(
            name="slow", flowmod_install=Constant(50.0),
            barrier_processing=Constant(0.1),
        )
        h = _Harness(timing=slow)
        h.channel.to_switch(add_flow(Match(in_port=1), out_port=2))
        h.channel.to_switch(BarrierRequest(xid=5))
        h.sim.run()
        reply = next(m for m in h.received if isinstance(m, BarrierReply))
        # 1ms channel + 50ms install + barrier processing + 1ms back
        assert h.sim.now >= 52.0
        assert reply.xid == 5

    def test_flowmod_error_reported(self):
        h = _Harness()
        bad = add_flow(Match(in_port=1), out_port=2)
        bad = FlowMod(match=bad.match, instructions=bad.instructions, table_id=99)
        h.send(bad.with_xid(7))
        error = h.received[0]
        assert isinstance(error, ErrorMsg)
        assert error.err_type == int(ErrorType.FLOW_MOD_FAILED)
        assert error.err_code == int(FlowModFailedCode.BAD_TABLE_ID)
        assert error.xid == 7
        assert h.switch.log.flow_mods_failed == 1

    def test_table_full_error(self):
        h = _Harness()
        h.switch.tables[0].capacity = 1
        h.send(
            add_flow(Match(in_port=1), out_port=2),
            add_flow(Match(in_port=2), out_port=2),
        )
        error = next(m for m in h.received if isinstance(m, ErrorMsg))
        assert error.err_code == int(FlowModFailedCode.TABLE_FULL)

    def test_flow_stats(self):
        h = _Harness()
        h.send(
            add_flow(Match(in_port=1), out_port=2, priority=7),
            FlowStatsRequest(xid=11),
        )
        reply = next(m for m in h.received if isinstance(m, FlowStatsReply))
        assert reply.xid == 11
        assert len(reply.entries) == 1
        assert reply.entries[0].priority == 7

    def test_delete_via_control(self):
        h = _Harness()
        h.send(
            add_flow(Match(in_port=1), out_port=2),
            delete_flow(Match(in_port=1)),
            BarrierRequest(xid=1),
        )
        assert h.switch.flow_count() == 0


class TestSwitchDataplane:
    def test_forward_calls_on_output(self):
        h = _Harness()
        h.send(add_flow(Match(in_port=1), out_port=7))
        emitted = []
        h.switch.on_output = lambda sw, packet, port, now: emitted.append(port)
        result = h.switch.receive_packet(Packet(), in_port=1)
        assert result.forwarded and emitted == [7]
        assert h.switch.log.packets_forwarded == 1

    def test_drop_counted(self):
        h = _Harness()
        h.switch.receive_packet(Packet(), in_port=1)
        assert h.switch.log.packets_dropped == 1

    def test_dump_flows(self):
        h = _Harness()
        h.send(add_flow(Match(in_port=1), out_port=7, priority=3))
        dump = h.switch.dump_flows()
        assert dump[0]["priority"] == 3
        assert dump[0]["match"] == {"in_port": 1}
