"""Tests for flow-table semantics (add/modify/delete, lookup, timeouts)."""

import pytest

from repro.errors import SwitchError, TableFullError
from repro.openflow.constants import FlowModFlags, FlowRemovedReason
from repro.openflow.flowmod import FlowMod, add_flow, delete_flow
from repro.openflow.match import Match
from repro.switch.flow_table import FlowTable, matches_overlap


@pytest.fixture
def table():
    return FlowTable(table_id=0, capacity=100)


class TestAdd:
    def test_add_and_lookup(self, table):
        table.apply_flow_mod(add_flow(Match(in_port=1), out_port=2))
        entry = table.lookup({"in_port": 1})
        assert entry is not None
        assert entry.instructions[0].actions[0].port == 2

    def test_add_replaces_same_match_priority(self, table):
        table.apply_flow_mod(add_flow(Match(in_port=1), out_port=2, priority=5))
        table.apply_flow_mod(add_flow(Match(in_port=1), out_port=9, priority=5))
        assert len(table) == 1
        assert table.lookup({"in_port": 1}).instructions[0].actions[0].port == 9

    def test_different_priority_coexists(self, table):
        table.apply_flow_mod(add_flow(Match(in_port=1), out_port=2, priority=5))
        table.apply_flow_mod(add_flow(Match(in_port=1), out_port=9, priority=6))
        assert len(table) == 2

    def test_capacity_enforced(self):
        small = FlowTable(capacity=2)
        small.apply_flow_mod(add_flow(Match(in_port=1), out_port=1))
        small.apply_flow_mod(add_flow(Match(in_port=2), out_port=1))
        with pytest.raises(TableFullError):
            small.apply_flow_mod(add_flow(Match(in_port=3), out_port=1))

    def test_replace_does_not_hit_capacity(self):
        small = FlowTable(capacity=1)
        small.apply_flow_mod(add_flow(Match(in_port=1), out_port=1))
        small.apply_flow_mod(add_flow(Match(in_port=1), out_port=2))
        assert len(small) == 1

    def test_overlap_check(self, table):
        table.apply_flow_mod(add_flow(Match(in_port=1), out_port=1, priority=5))
        overlapping = add_flow(Match(eth_type=0x0800), out_port=2, priority=5)
        overlapping = FlowMod(
            command=overlapping.command,
            match=overlapping.match,
            priority=5,
            instructions=overlapping.instructions,
            flags=int(FlowModFlags.CHECK_OVERLAP),
        )
        with pytest.raises(SwitchError, match="overlap"):
            table.apply_flow_mod(overlapping)

    def test_overlap_check_different_priority_ok(self, table):
        table.apply_flow_mod(add_flow(Match(in_port=1), out_port=1, priority=5))
        fine = FlowMod(
            match=Match(eth_type=0x0800),
            priority=6,
            flags=int(FlowModFlags.CHECK_OVERLAP),
        )
        table.apply_flow_mod(fine)  # must not raise


class TestLookup:
    def test_priority_order(self, table):
        table.apply_flow_mod(add_flow(Match(), out_port=1, priority=1))
        table.apply_flow_mod(add_flow(Match(in_port=1), out_port=2, priority=10))
        entry = table.lookup({"in_port": 1})
        assert entry.priority == 10
        entry = table.lookup({"in_port": 2})
        assert entry.priority == 1

    def test_counters_touched(self, table):
        table.apply_flow_mod(add_flow(Match(in_port=1), out_port=2))
        table.lookup({"in_port": 1}, now=5.0, n_bytes=100)
        table.lookup({"in_port": 1}, now=6.0, n_bytes=50)
        entry = table.lookup({"in_port": 1}, touch=False)
        assert entry.packet_count == 2
        assert entry.byte_count == 150
        assert entry.last_match_time == 6.0

    def test_miss_returns_none(self, table):
        table.apply_flow_mod(add_flow(Match(in_port=1), out_port=2))
        assert table.lookup({"in_port": 7}) is None

    def test_tie_break_is_first_installed(self, table):
        table.apply_flow_mod(add_flow(Match(in_port=1), out_port=1, priority=5))
        table.apply_flow_mod(add_flow(Match(eth_type=0x0800), out_port=2, priority=5))
        entry = table.lookup({"in_port": 1, "eth_type": 0x0800})
        assert entry.instructions[0].actions[0].port == 1


class TestModify:
    def test_nonstrict_modify_subsumed(self, table):
        table.apply_flow_mod(add_flow(Match(in_port=1, eth_type=0x0800), out_port=2))
        table.apply_flow_mod(
            FlowMod.from_ofctl(
                {"command": "MODIFY", "match": {"in_port": 1},
                 "actions": [{"type": "OUTPUT", "port": 7}]}
            )
        )
        assert table.lookup({"in_port": 1, "eth_type": 0x0800}).instructions[0].actions[0].port == 7

    def test_strict_modify_needs_exact_identity(self, table):
        table.apply_flow_mod(add_flow(Match(in_port=1), out_port=2, priority=5))
        table.apply_flow_mod(
            FlowMod.from_ofctl(
                {"command": "MODIFY_STRICT", "priority": 6, "match": {"in_port": 1},
                 "actions": [{"type": "OUTPUT", "port": 7}]}
            )
        )
        # wrong priority: unchanged
        assert table.lookup({"in_port": 1}).instructions[0].actions[0].port == 2


class TestDelete:
    def test_nonstrict_delete_subsumed(self, table):
        table.apply_flow_mod(add_flow(Match(in_port=1, eth_type=0x0800), out_port=2))
        table.apply_flow_mod(add_flow(Match(in_port=2), out_port=2))
        removed = table.apply_flow_mod(delete_flow(Match(in_port=1)))
        assert len(removed) == 1
        assert len(table) == 1

    def test_wildcard_delete_clears_table(self, table):
        table.apply_flow_mod(add_flow(Match(in_port=1), out_port=2))
        table.apply_flow_mod(add_flow(Match(in_port=2), out_port=2))
        removed = table.apply_flow_mod(delete_flow(Match()))
        assert len(removed) == 2 and len(table) == 0

    def test_strict_delete_exact(self, table):
        table.apply_flow_mod(add_flow(Match(in_port=1), out_port=2, priority=5))
        removed = table.apply_flow_mod(
            delete_flow(Match(in_port=1), priority=6, strict=True)
        )
        assert not removed and len(table) == 1
        removed = table.apply_flow_mod(
            delete_flow(Match(in_port=1), priority=5, strict=True)
        )
        assert len(removed) == 1 and len(table) == 0

    def test_delete_filtered_by_out_port(self, table):
        table.apply_flow_mod(add_flow(Match(in_port=1), out_port=2))
        table.apply_flow_mod(add_flow(Match(in_port=2), out_port=3))
        mod = FlowMod.from_ofctl({"command": "DELETE", "match": {}})
        mod = FlowMod(command=mod.command, match=mod.match, out_port=3)
        removed = table.apply_flow_mod(mod)
        assert len(removed) == 1
        assert removed[0].match.in_port == 2

    def test_cookie_mask_filter(self, table):
        table.apply_flow_mod(add_flow(Match(in_port=1), out_port=2, cookie=0xA))
        table.apply_flow_mod(add_flow(Match(in_port=2), out_port=2, cookie=0xB))
        mod = FlowMod(command=3, match=Match(), cookie=0xA, cookie_mask=0xFF)
        removed = table.apply_flow_mod(mod)
        assert len(removed) == 1 and removed[0].cookie == 0xA


class TestTimeouts:
    def test_hard_timeout(self, table):
        table.apply_flow_mod(
            add_flow(Match(in_port=1), out_port=2, hard_timeout=10), now=0.0
        )
        assert table.lookup({"in_port": 1}, now=5.0) is not None
        assert table.lookup({"in_port": 1}, now=11.0) is None
        fired = table.expire(now=11.0)
        assert fired[0][1] is FlowRemovedReason.HARD_TIMEOUT

    def test_idle_timeout_reset_by_traffic(self, table):
        table.apply_flow_mod(
            add_flow(Match(in_port=1), out_port=2, idle_timeout=10), now=0.0
        )
        assert table.lookup({"in_port": 1}, now=8.0) is not None  # touches
        assert table.lookup({"in_port": 1}, now=17.0) is not None
        assert table.lookup({"in_port": 1}, now=30.0) is None
        fired = table.expire(now=30.0)
        assert fired[0][1] is FlowRemovedReason.IDLE_TIMEOUT

    def test_no_timeout_lives_forever(self, table):
        table.apply_flow_mod(add_flow(Match(in_port=1), out_port=2))
        assert table.lookup({"in_port": 1}, now=1e9) is not None


class TestOverlapPredicate:
    def test_disjoint_values(self):
        assert not matches_overlap(Match(in_port=1), Match(in_port=2))

    def test_wildcard_overlaps(self):
        assert matches_overlap(Match(), Match(in_port=1))

    def test_orthogonal_fields_overlap(self):
        assert matches_overlap(Match(in_port=1), Match(tcp_dst=80))

    def test_prefix_overlap(self):
        assert matches_overlap(
            Match(ipv4_dst="10.0.0.0/8"), Match(ipv4_dst="10.1.0.0/16")
        )
        assert not matches_overlap(
            Match(ipv4_dst="10.0.0.0/16"), Match(ipv4_dst="10.1.0.0/16")
        )
