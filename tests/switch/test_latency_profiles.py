"""Tests for switch timing profiles and their effect on barrier timing."""

import random

import pytest

from repro.channel.base import ControlChannel
from repro.channel.latency_models import Constant
from repro.openflow.flowmod import add_flow
from repro.openflow.match import Match
from repro.openflow.messages import BarrierReply, BarrierRequest
from repro.sim.simulator import Simulator
from repro.switch.latency import (
    HARDWARE_PROFILE,
    OVS_LOADED_PROFILE,
    OVS_PROFILE,
    PROFILES,
    SLOW_VENDOR_PROFILE,
    SwitchTimingProfile,
)
from repro.switch.datapath import SwitchSim


class TestProfiles:
    def test_registry_complete(self):
        assert set(PROFILES) == {"ovs", "ovs-loaded", "hardware", "slow-vendor"}
        for name, profile in PROFILES.items():
            assert profile.name == name

    def test_means_ordered(self):
        assert (
            OVS_PROFILE.mean_install_ms()
            < OVS_LOADED_PROFILE.mean_install_ms()
            < HARDWARE_PROFILE.mean_install_ms()
            < SLOW_VENDOR_PROFILE.mean_install_ms()
        )

    def test_samples_nonnegative(self):
        rng = random.Random(1)
        for profile in PROFILES.values():
            for _ in range(50):
                assert profile.flowmod_install.sample(rng) >= 0


def _barrier_time(profile: SwitchTimingProfile, n_mods: int) -> float:
    sim = Simulator()
    channel = ControlChannel(sim, latency=Constant(0.0), rng=random.Random(0))
    received = []
    channel.bind_controller(received.append)
    SwitchSim(sim, dpid=1, channel=channel, timing=profile,
              rng=random.Random(7))
    for index in range(n_mods):
        channel.to_switch(add_flow(Match(in_port=index + 1), out_port=1))
    channel.to_switch(BarrierRequest(xid=1))
    sim.run()
    assert any(isinstance(m, BarrierReply) for m in received)
    return sim.now


class TestInstallSerialization:
    def test_installs_serialize(self):
        """n FlowMods take roughly n x install time before the barrier."""
        one = _barrier_time(OVS_PROFILE, 1)
        ten = _barrier_time(OVS_PROFILE, 10)
        assert ten > 5 * one

    def test_hardware_much_slower(self):
        assert _barrier_time(HARDWARE_PROFILE, 5) > 10 * _barrier_time(OVS_PROFILE, 5)

    def test_busy_time_accounted(self):
        sim = Simulator()
        channel = ControlChannel(sim, latency=Constant(0.0), rng=random.Random(0))
        channel.bind_controller(lambda m: None)
        switch = SwitchSim(sim, dpid=1, channel=channel, timing=OVS_PROFILE,
                           rng=random.Random(7))
        for index in range(4):
            channel.to_switch(add_flow(Match(in_port=index + 1), out_port=1))
        sim.run()
        assert switch.log.busy_time_ms > 0
        assert switch.busy_until <= sim.now
