"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.core.problem import UpdateProblem
from repro.netlab.figure1 import figure1_problem
from repro.sim.simulator import Simulator
from repro.topology.builders import figure1, linear
from repro.topology.graph import Topology


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def triangle() -> Topology:
    """Three switches in a triangle."""
    topo = Topology(name="triangle")
    for dpid in (1, 2, 3):
        topo.add_switch(dpid)
    topo.add_link(1, 2)
    topo.add_link(2, 3)
    topo.add_link(1, 3)
    return topo


@pytest.fixture
def line5() -> Topology:
    return linear(5)


@pytest.fixture
def fig1_topo() -> Topology:
    return figure1(with_hosts=True)


@pytest.fixture
def fig1_problem() -> UpdateProblem:
    return figure1_problem()


@pytest.fixture
def simple_waypoint_problem() -> UpdateProblem:
    """Old 1-2-3-4-5, new 1-6-3-7-5, waypoint 3: installs on both sides."""
    return UpdateProblem([1, 2, 3, 4, 5], [1, 6, 3, 7, 5], waypoint=3)


@pytest.fixture
def plain_problem() -> UpdateProblem:
    """No waypoint: old 1-2-3-4, new 1-3-2-4 (one backward mover)."""
    return UpdateProblem([1, 2, 3, 4], [1, 3, 2, 4])
