"""Tests for the topology graph model."""

import pytest

from repro.errors import TopologyError
from repro.topology.graph import Topology, subtopology


class TestConstruction:
    def test_add_nodes_and_links(self):
        topo = Topology()
        topo.add_switch(1)
        topo.add_switch(2)
        link = topo.add_link(1, 2, latency_ms=3.0)
        assert topo.has_link(1, 2) and topo.has_link(2, 1)
        assert link.latency_ms == 3.0

    def test_duplicate_node_rejected(self):
        topo = Topology()
        topo.add_switch(1)
        with pytest.raises(TopologyError, match="duplicate"):
            topo.add_switch(1)

    def test_duplicate_link_rejected(self):
        topo = Topology()
        topo.add_switch(1)
        topo.add_switch(2)
        topo.add_link(1, 2)
        with pytest.raises(TopologyError, match="duplicate"):
            topo.add_link(2, 1)

    def test_self_loop_rejected(self):
        topo = Topology()
        topo.add_switch(1)
        with pytest.raises(TopologyError, match="self-loop"):
            topo.add_link(1, 1)

    def test_unknown_endpoint_rejected(self):
        topo = Topology()
        topo.add_switch(1)
        with pytest.raises(TopologyError, match="unknown"):
            topo.add_link(1, 9)

    def test_bad_link_attrs_rejected(self):
        topo = Topology()
        topo.add_switch(1)
        topo.add_switch(2)
        with pytest.raises(TopologyError):
            topo.add_link(1, 2, latency_ms=-1)
        with pytest.raises(TopologyError):
            topo.add_link(1, 2, bandwidth_mbps=0)


class TestPorts:
    @pytest.fixture
    def topo(self):
        topo = Topology()
        for dpid in (1, 2, 3):
            topo.add_switch(dpid)
        topo.add_link(1, 2)
        topo.add_link(1, 3)
        return topo

    def test_ports_assigned_in_order(self, topo):
        assert topo.port_between(1, 2) == 1
        assert topo.port_between(1, 3) == 2
        assert topo.port_between(2, 1) == 1

    def test_peer_resolution(self, topo):
        assert topo.peer(1, 2) == (3, 1)
        assert topo.peer(3, 1) == (1, 2)

    def test_unknown_port(self, topo):
        with pytest.raises(TopologyError, match="no port"):
            topo.peer(1, 9)

    def test_ports_map(self, topo):
        assert topo.ports(1) == {1: 2, 2: 3}

    def test_neighbors_in_port_order(self, topo):
        assert topo.neighbors(1) == [2, 3]

    def test_degree(self, topo):
        assert topo.degree(1) == 2
        assert topo.degree(2) == 1

    def test_ports_not_reused_after_removal(self, topo):
        topo.remove_link(1, 2)
        assert not topo.has_link(1, 2)
        topo.add_link(1, 2)
        assert topo.port_between(1, 2) == 3  # fresh port


class TestQueries:
    def test_kinds(self):
        topo = Topology()
        topo.add_switch(1)
        topo.add_host("h1")
        assert topo.switches() == [1]
        assert topo.hosts() == ["h1"]
        assert topo.node("h1").is_host()
        assert topo.node(1).is_switch()

    def test_contains_len_iter(self):
        topo = Topology()
        topo.add_switch(1)
        topo.add_switch(2)
        assert 1 in topo and 9 not in topo
        assert len(topo) == 2
        assert sorted(topo) == [1, 2]

    def test_unknown_node_raises(self):
        topo = Topology()
        with pytest.raises(TopologyError):
            topo.node(1)
        with pytest.raises(TopologyError):
            topo.link_between(1, 2)


class TestAlgorithms:
    def test_shortest_path(self, line5):
        assert line5.shortest_path(1, 5) == [1, 2, 3, 4, 5]

    def test_no_path_raises(self):
        topo = Topology()
        topo.add_switch(1)
        topo.add_switch(2)
        with pytest.raises(TopologyError, match="no path"):
            topo.shortest_path(1, 2)

    def test_connectivity(self, line5):
        assert line5.is_connected()
        line5.remove_link(2, 3)
        assert not line5.is_connected()

    def test_disjoint_paths(self, triangle):
        paths = triangle.disjoint_paths(1, 3, k=2)
        assert len(paths) == 2
        interiors = [tuple(p[1:-1]) for p in paths]
        assert len(set(interiors)) == 2

    def test_to_networkx(self, triangle):
        graph = triangle.to_networkx()
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 3

    def test_validate_passes(self, triangle):
        triangle.validate()


class TestSubtopology:
    def test_induced_subgraph(self, line5):
        sub = subtopology(line5, [1, 2, 3])
        assert sorted(sub.nodes()) == [1, 2, 3]
        assert sub.has_link(1, 2) and sub.has_link(2, 3)
        assert not sub.has_link(3, 4)

    def test_kinds_preserved(self):
        topo = Topology()
        topo.add_switch(1)
        topo.add_host("h1")
        topo.add_link(1, "h1")
        sub = subtopology(topo, [1, "h1"])
        assert sub.node("h1").is_host()
