"""Tests for the Path abstraction."""

import pytest

from repro.errors import PathError
from repro.topology.builders import linear
from repro.topology.paths import (
    Path,
    as_path,
    common_nodes,
    exclusive_nodes,
    forwarding_map,
    shared_endpoints,
)


class TestConstruction:
    def test_basic(self):
        path = Path([1, 2, 3])
        assert path.source == 1 and path.destination == 3
        assert len(path) == 3

    def test_too_short(self):
        with pytest.raises(PathError, match="two nodes"):
            Path([1])

    def test_not_simple(self):
        with pytest.raises(PathError, match="simple"):
            Path([1, 2, 1])

    def test_as_path_idempotent(self):
        path = Path([1, 2])
        assert as_path(path) is path
        assert as_path([1, 2]) == path

    def test_equality_with_sequences(self):
        assert Path([1, 2, 3]) == (1, 2, 3)
        assert Path([1, 2, 3]) == [1, 2, 3]
        assert Path([1, 2, 3]) != Path([1, 3, 2])

    def test_hashable(self):
        assert len({Path([1, 2]), Path([1, 2]), Path([2, 1])}) == 2


class TestNavigation:
    @pytest.fixture
    def path(self):
        return Path([1, 2, 3, 4, 5])

    def test_next_prev(self, path):
        assert path.next_hop(2) == 3
        assert path.prev_hop(2) == 1
        assert path.next_hop(5) is None
        assert path.prev_hop(1) is None

    def test_off_path_raises(self, path):
        with pytest.raises(PathError):
            path.next_hop(99)

    def test_index_of(self, path):
        assert path.index_of(3) == 2

    def test_edges(self, path):
        assert list(path.edges()) == [(1, 2), (2, 3), (3, 4), (4, 5)]

    def test_before_after(self, path):
        assert path.before(3) == (1, 2)
        assert path.before(3, strict=False) == (1, 2, 3)
        assert path.after(3) == (4, 5)
        assert path.after(3, strict=False) == (3, 4, 5)

    def test_subpath(self, path):
        assert path.subpath(2, 4) == (2, 3, 4)
        with pytest.raises(PathError):
            path.subpath(4, 2)

    def test_reversed(self, path):
        assert path.reversed() == (5, 4, 3, 2, 1)

    def test_contains_getitem(self, path):
        assert 3 in path and 99 not in path
        assert path[0] == 1 and path[-1] == 5


class TestTopologyValidation:
    def test_valid_path(self):
        topo = linear(5)
        assert Path([1, 2, 3]).is_valid_in(topo)

    def test_missing_node(self):
        topo = linear(3)
        assert not Path([1, 2, 9]).is_valid_in(topo)

    def test_missing_link(self):
        topo = linear(5)
        with pytest.raises(PathError, match="not a link"):
            Path([1, 3, 5]).validate_in(topo)


class TestSetHelpers:
    def test_common_and_exclusive(self):
        a, b = Path([1, 2, 3, 4]), Path([1, 5, 3, 4])
        assert common_nodes(a, b) == {1, 3, 4}
        assert exclusive_nodes(a, b) == {2}
        assert exclusive_nodes(b, a) == {5}

    def test_shared_endpoints(self):
        assert shared_endpoints(Path([1, 2, 3]), Path([1, 5, 3]))
        assert not shared_endpoints(Path([1, 2, 3]), Path([2, 1, 3]))

    def test_forwarding_map(self):
        assert forwarding_map(Path([1, 2, 3])) == {1: 2, 2: 3}
