"""Tests for topology builders, random generators and JSON I/O."""

import random

import pytest

from repro.errors import TopologyError
from repro.topology.builders import (
    FIGURE1_NEW_PATH,
    FIGURE1_OLD_PATH,
    FIGURE1_WAYPOINT,
    binary_tree,
    fat_tree,
    figure1,
    figure1_paths,
    grid,
    linear,
    ring,
    star,
)
from repro.topology.io import (
    load_topology,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)
from repro.topology.paths import Path
from repro.topology.random_graphs import (
    barabasi_albert,
    erdos_renyi,
    random_simple_path,
    random_update_instance,
    random_waypointed_instance,
    waxman,
)


class TestBuilders:
    def test_linear(self):
        topo = linear(4)
        assert len(topo) == 4
        assert len(topo.links()) == 3

    def test_linear_with_hosts(self):
        topo = linear(3, with_hosts=True)
        assert set(topo.hosts()) == {"h1", "h2"}
        assert topo.has_link("h1", 1) and topo.has_link("h2", 3)

    def test_linear_validation(self):
        with pytest.raises(TopologyError):
            linear(0)

    def test_ring(self):
        topo = ring(5)
        assert all(topo.degree(n) == 2 for n in topo.switches())
        with pytest.raises(TopologyError):
            ring(2)

    def test_star(self):
        topo = star(4)
        assert topo.degree(1) == 4
        assert len(topo) == 5

    def test_grid(self):
        topo = grid(3, 4)
        assert len(topo) == 12
        assert topo.has_link(1, 2) and topo.has_link(1, 5)

    def test_binary_tree(self):
        topo = binary_tree(3)
        assert len(topo) == 7
        assert topo.degree(1) == 2

    def test_fat_tree_structure(self):
        topo = fat_tree(4)
        assert len(topo) == 20  # 4 core + 8 agg + 8 edge
        assert len(topo.links()) == 32
        assert topo.is_connected()

    def test_fat_tree_rejects_odd(self):
        with pytest.raises(TopologyError):
            fat_tree(3)


class TestFigure1:
    def test_twelve_switches_two_hosts(self):
        topo = figure1()
        assert len(topo.switches()) == 12
        assert set(topo.hosts()) == {"h1", "h2"}

    def test_both_routes_exist(self):
        topo = figure1()
        Path(FIGURE1_OLD_PATH).validate_in(topo)
        Path(FIGURE1_NEW_PATH).validate_in(topo)

    def test_paths_share_endpoints_and_waypoint(self):
        old, new, waypoint = figure1_paths()
        assert old.source == new.source == 1
        assert old.destination == new.destination == 12
        assert waypoint == FIGURE1_WAYPOINT
        assert waypoint in old and waypoint in new

    def test_waypoint_attr_marked(self):
        topo = figure1()
        assert topo.node(3).attrs["waypoint"] is True
        assert topo.node(4).attrs["waypoint"] is False

    def test_spare_switches_unused_by_routes(self):
        used = set(FIGURE1_OLD_PATH) | set(FIGURE1_NEW_PATH)
        spares = set(range(1, 13)) - used
        assert spares == {10, 11}


class TestRandomGraphs:
    def test_erdos_renyi_connected(self):
        topo = erdos_renyi(12, 0.3, seed=1)
        assert topo.is_connected()
        assert len(topo) == 12

    def test_waxman_connected(self):
        topo = waxman(10, seed=2)
        assert topo.is_connected()

    def test_barabasi_connected(self):
        topo = barabasi_albert(15, m=2, seed=3)
        assert topo.is_connected()

    def test_determinism(self):
        a = erdos_renyi(10, 0.4, seed=7)
        b = erdos_renyi(10, 0.4, seed=7)
        assert {l.endpoints() for l in a.links()} == {
            l.endpoints() for l in b.links()
        }

    def test_random_simple_path(self):
        topo = erdos_renyi(10, 0.5, seed=4)
        path = random_simple_path(topo, 1, 10, seed=5)
        assert path.source == 1 and path.destination == 10
        path.validate_in(topo)

    def test_random_update_instance_shape(self):
        old, new, waypoint = random_update_instance(8, seed=6)
        assert old.source == new.source and old.destination == new.destination
        assert waypoint is None

    def test_waypointed_instance(self):
        old, new, waypoint = random_waypointed_instance(8, seed=7)
        assert waypoint in old and waypoint in new
        assert waypoint not in (old.source, old.destination)

    def test_instance_determinism(self):
        a = random_update_instance(8, seed=11)
        b = random_update_instance(8, seed=11)
        assert a[0] == b[0] and a[1] == b[1]

    def test_rng_instance_accepted(self):
        rng = random.Random(3)
        old, new, _ = random_update_instance(6, seed=rng)
        assert old.source == new.source


class TestIO:
    def test_dict_roundtrip(self):
        topo = figure1()
        back = topology_from_dict(topology_to_dict(topo))
        assert sorted(back.nodes(), key=repr) == sorted(topo.nodes(), key=repr)
        assert {frozenset(l.endpoints()) for l in back.links()} == {
            frozenset(l.endpoints()) for l in topo.links()
        }

    def test_file_roundtrip(self, tmp_path):
        topo = linear(4, with_hosts=True)
        path = tmp_path / "topo.json"
        save_topology(topo, path)
        back = load_topology(path)
        assert back.name == topo.name
        assert set(back.hosts()) == {"h1", "h2"}

    def test_link_attrs_survive(self):
        topo = Path  # placeholder to satisfy linters; real assertions below
        from repro.topology.graph import Topology

        t = Topology()
        t.add_switch(1)
        t.add_switch(2)
        t.add_link(1, 2, latency_ms=7.5, bandwidth_mbps=100.0)
        back = topology_from_dict(topology_to_dict(t))
        link = back.link_between(1, 2)
        assert link.latency_ms == 7.5 and link.bandwidth_mbps == 100.0

    def test_bad_dict_rejected(self):
        with pytest.raises(TopologyError):
            topology_from_dict({"nodes": [{}]})
        with pytest.raises(TopologyError):
            topology_from_dict({"nodes": [{"id": 1}], "links": [{"a": 1}]})
        with pytest.raises(TopologyError):
            topology_from_dict([1, 2])
