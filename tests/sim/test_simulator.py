"""Tests for the discrete-event simulator and RNG streams."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue
from repro.sim.random_source import RandomStreams, derive_seed
from repro.sim.simulator import Simulator


class TestEventQueue:
    def test_ordering_by_time(self):
        queue = EventQueue()
        queue.push(5.0, lambda: None)
        queue.push(1.0, lambda: None)
        queue.push(3.0, lambda: None)
        times = [queue.pop().time for _ in range(3)]
        assert times == [1.0, 3.0, 5.0]

    def test_fifo_for_equal_times(self):
        queue = EventQueue()
        order = []
        queue.push(1.0, order.append, "a")
        queue.push(1.0, order.append, "b")
        for _ in range(2):
            event = queue.pop()
            event.callback(*event.args)
        assert order == ["a", "b"]

    def test_cancellation(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        event.cancel()
        assert queue.pop() is None
        assert len(queue) == 0

    def test_peek_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        first.cancel()
        assert queue.peek_time() == 2.0
        assert bool(queue)


class TestSimulator:
    def test_runs_in_time_order(self, sim):
        fired = []
        sim.schedule(5.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.run()
        assert fired == ["early", "late"]
        assert sim.now == 5.0

    def test_nested_scheduling(self, sim):
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                sim.schedule(1.0, chain, depth + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0

    def test_run_until(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(10.0, fired.append, 2)
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 2]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_past_absolute_time_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_cancel_via_simulator(self, sim):
        fired = []
        event = sim.schedule(1.0, fired.append, 1)
        sim.cancel(event)
        sim.run()
        assert not fired

    def test_runaway_guard(self, sim):
        def forever():
            sim.schedule(0.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError, match="events"):
            sim.run(max_events=100)

    def test_step(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        assert sim.step() is True
        assert sim.step() is False
        assert fired == [1]

    def test_counters(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending_events == 2
        sim.run()
        assert sim.events_processed == 2


class TestRandomStreams:
    def test_streams_are_deterministic(self):
        a = RandomStreams(42).stream("x").random()
        b = RandomStreams(42).stream("x").random()
        assert a == b

    def test_streams_are_independent(self):
        streams = RandomStreams(42)
        a = streams.stream("a")
        b = streams.stream("b")
        assert a is not b
        assert a.random() != b.random()

    def test_stream_cached(self):
        streams = RandomStreams(1)
        assert streams.stream("x") is streams.stream("x")

    def test_consumption_isolation(self):
        # draining stream "a" must not change what "b" yields
        one = RandomStreams(7)
        for _ in range(100):
            one.stream("a").random()
        isolated = one.stream("b").random()
        two = RandomStreams(7)
        assert two.stream("b").random() == isolated

    def test_fork_differs(self):
        base = RandomStreams(3)
        fork = base.fork("child")
        assert base.stream("x").random() != fork.stream("x").random()

    def test_derive_seed_stable(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")
        assert derive_seed(1, "a") != derive_seed(2, "a")
        assert derive_seed(1, "a") != derive_seed(1, "b")
