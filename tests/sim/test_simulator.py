"""Tests for the discrete-event simulator and RNG streams."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue
from repro.sim.random_source import RandomStreams, derive_seed
from repro.sim.simulator import Simulator


class TestEventQueue:
    def test_ordering_by_time(self):
        queue = EventQueue()
        queue.push(5.0, lambda: None)
        queue.push(1.0, lambda: None)
        queue.push(3.0, lambda: None)
        times = [queue.pop().time for _ in range(3)]
        assert times == [1.0, 3.0, 5.0]

    def test_fifo_for_equal_times(self):
        queue = EventQueue()
        order = []
        queue.push(1.0, order.append, "a")
        queue.push(1.0, order.append, "b")
        for _ in range(2):
            event = queue.pop()
            event.callback(*event.args)
        assert order == ["a", "b"]

    def test_cancellation(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        event.cancel()
        assert queue.pop() is None
        assert len(queue) == 0

    def test_peek_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        first.cancel()
        assert queue.peek_time() == 2.0
        assert bool(queue)


class TestSimulator:
    def test_runs_in_time_order(self, sim):
        fired = []
        sim.schedule(5.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.run()
        assert fired == ["early", "late"]
        assert sim.now == 5.0

    def test_nested_scheduling(self, sim):
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                sim.schedule(1.0, chain, depth + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0

    def test_run_until(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(10.0, fired.append, 2)
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 2]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_past_absolute_time_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_cancel_via_simulator(self, sim):
        fired = []
        event = sim.schedule(1.0, fired.append, 1)
        sim.cancel(event)
        sim.run()
        assert not fired

    def test_runaway_guard(self, sim):
        def forever():
            sim.schedule(0.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError, match="events"):
            sim.run(max_events=100)

    def test_step(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        assert sim.step() is True
        assert sim.step() is False
        assert fired == [1]

    def test_counters(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending_events == 2
        sim.run()
        assert sim.events_processed == 2


class TestRandomStreams:
    def test_streams_are_deterministic(self):
        a = RandomStreams(42).stream("x").random()
        b = RandomStreams(42).stream("x").random()
        assert a == b

    def test_streams_are_independent(self):
        streams = RandomStreams(42)
        a = streams.stream("a")
        b = streams.stream("b")
        assert a is not b
        assert a.random() != b.random()

    def test_stream_cached(self):
        streams = RandomStreams(1)
        assert streams.stream("x") is streams.stream("x")

    def test_consumption_isolation(self):
        # draining stream "a" must not change what "b" yields
        one = RandomStreams(7)
        for _ in range(100):
            one.stream("a").random()
        isolated = one.stream("b").random()
        two = RandomStreams(7)
        assert two.stream("b").random() == isolated

    def test_fork_differs(self):
        base = RandomStreams(3)
        fork = base.fork("child")
        assert base.stream("x").random() != fork.stream("x").random()

    def test_derive_seed_stable(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")
        assert derive_seed(1, "a") != derive_seed(2, "a")
        assert derive_seed(1, "a") != derive_seed(1, "b")


class TestEventCancellation:
    def test_cancel_returns_true_once(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        assert event.pending
        assert event.cancel() is True
        assert event.cancel() is False  # second retraction is a no-op
        assert not event.pending

    def test_cancel_after_fire_returns_false(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        popped = queue.pop()
        assert popped is event and event.fired
        assert event.cancel() is False

    def test_len_is_live_count(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(5)]
        assert len(queue) == 5
        events[1].cancel()
        events[3].cancel()
        assert len(queue) == 3  # counted at cancel time, not at pop time
        assert [queue.pop().time for _ in range(3)] == [0.0, 2.0, 4.0]
        assert len(queue) == 0
        assert queue.pop() is None

    def test_simulator_cancel_returns_retraction_verdict(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(5.0, fired.append, "x")
        assert sim.cancel(event) is True
        assert sim.cancel(event) is False
        sim.run()
        assert fired == [] and sim.pending_events == 0

    def test_cancelled_event_never_fires(self):
        sim = Simulator()
        fired = []
        keep = sim.schedule(1.0, fired.append, "keep")
        drop = sim.schedule(1.0, fired.append, "drop")
        drop.cancel()
        sim.run()
        assert fired == ["keep"]
        assert keep.fired and not drop.fired

    def test_cancellation_preserves_same_instant_order(self):
        # retracting one of several same-instant events must not disturb
        # the deterministic (time, seq) order of the survivors
        def run(cancel_index):
            sim = Simulator()
            fired = []
            events = [
                sim.schedule(2.0, fired.append, tag) for tag in "abcde"
            ]
            events[cancel_index].cancel()
            sim.run()
            return fired

        assert run(2) == ["a", "b", "d", "e"]
        assert run(2) == ["a", "b", "d", "e"]  # identical across runs
        assert run(0) == ["b", "c", "d", "e"]
        assert run(4) == ["a", "b", "c", "d"]

    def test_cancel_from_within_callback(self):
        # a callback retracting a later event beats the heap to it
        sim = Simulator()
        fired = []
        later = sim.schedule(3.0, fired.append, "later")
        sim.schedule(1.0, lambda: later.cancel())
        sim.run()
        assert fired == []
        assert sim.now == 1.0  # the cancelled tail never advanced the clock
