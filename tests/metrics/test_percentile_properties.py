"""Edge-case and property tests for percentile/summarize.

``percentile`` promises the same linear interpolation as
``statistics.quantiles(..., method="inclusive")`` at the cut points;
randomized series pin that equivalence.  NaN -- as a sample or as the
query -- must be rejected loudly, never silently propagated into a
benchmark table.
"""

import math
import random
import statistics

import pytest

from repro.metrics.collector import (
    MetricsCollector,
    percentile,
    summarize,
)

NAN = float("nan")


class TestNanRejection:
    def test_percentile_rejects_nan_query(self):
        with pytest.raises(ValueError, match="NaN"):
            percentile([1.0, 2.0], NAN)

    def test_percentile_rejects_nan_samples(self):
        with pytest.raises(ValueError, match="NaN"):
            percentile([NAN], 50.0)
        with pytest.raises(ValueError, match="NaN"):
            percentile([1.0, NAN], 75.0)

    def test_summarize_rejects_nan_samples(self):
        with pytest.raises(ValueError, match="NaN"):
            summarize("x", [1.0, NAN, 3.0])

    def test_collector_rejects_nan_at_record_time(self):
        collector = MetricsCollector()
        with pytest.raises(ValueError, match="NaN"):
            collector.record("x", NAN)
        with pytest.raises(ValueError, match="NaN"):
            collector.record_many("x", [1.0, NAN])
        with pytest.raises(ValueError, match="NaN"):
            collector.observe("h", NAN)
        # the failed calls must not have left partial state behind
        assert collector.get("x") == []

    def test_infinities_are_not_nan(self):
        summary = summarize("x", [float("inf")])
        assert math.isinf(summary.maximum)
        assert math.isinf(percentile([1.0, float("inf")], 100.0))


class TestQuantileEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_statistics_inclusive_at_cut_points(self, seed):
        rng = random.Random(seed)
        size = rng.randint(2, 60)
        data = sorted(rng.uniform(-1e3, 1e3) for _ in range(size))
        for n in (2, 4, 10, 20):
            cuts = statistics.quantiles(data, n=n, method="inclusive")
            for k, expected in enumerate(cuts, start=1):
                ours = percentile(data, 100.0 * k / n)
                assert ours == pytest.approx(expected, rel=1e-12, abs=1e-9)

    @pytest.mark.parametrize("seed", range(4))
    def test_monotone_in_q(self, seed):
        rng = random.Random(100 + seed)
        data = sorted(rng.gauss(0, 50) for _ in range(rng.randint(1, 40)))
        qs = [rng.uniform(0, 100) for _ in range(50)]
        values = [percentile(data, q) for q in sorted(qs)]
        assert values == sorted(values)

    def test_endpoints_are_min_and_max(self):
        data = [3.0, 1.0, 2.0]
        data.sort()
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 100.0) == 3.0

    def test_median_matches_statistics_median(self):
        for data in ([1.0], [1.0, 2.0], [5.0, 1.0, 3.0], [4.0, 2.0, 8.0, 6.0]):
            data.sort()
            assert percentile(data, 50.0) == pytest.approx(
                statistics.median(data)
            )
