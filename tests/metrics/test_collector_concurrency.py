"""Thread-safety regression tests for the process-wide collector.

The fabric coordinator, worker heartbeat threads, and REST handler
threads all bump ``global_collector()`` concurrently; an unlocked
``dict.setdefault``/read-modify-write cycle loses increments under
contention.  These tests hammer every mutating method from threads and
assert nothing is lost.
"""

import threading

from repro.metrics.collector import MetricsCollector

THREADS = 8
ROUNDS = 2000


def _hammer(fn):
    barrier = threading.Barrier(THREADS)

    def work(index):
        barrier.wait()  # maximize interleaving
        for i in range(ROUNDS):
            fn(index, i)

    threads = [
        threading.Thread(target=work, args=(index,))
        for index in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestConcurrentMutation:
    def test_increment_loses_nothing(self):
        collector = MetricsCollector()
        _hammer(lambda index, i: collector.increment("hits"))
        assert collector.counter("hits") == THREADS * ROUNDS

    def test_labeled_increment_folds_exactly(self):
        collector = MetricsCollector()
        _hammer(lambda index, i: collector.increment(
            "cells", labels={"worker": f"w{index}"}
        ))
        assert collector.counter("cells") == THREADS * ROUNDS
        per_label = collector.labeled_counters("cells")
        assert len(per_label) == THREADS
        assert all(v == ROUNDS for v in per_label.values())

    def test_record_and_observe_lose_nothing(self):
        collector = MetricsCollector()

        def mixed(index, i):
            collector.record("lat", float(i % 7))
            collector.observe("lat_hist", float(i % 7))

        _hammer(mixed)
        assert len(collector.get("lat")) == THREADS * ROUNDS
        assert collector.histogram("lat_hist").total == THREADS * ROUNDS

    def test_merge_during_increments(self):
        # merging a worker collector into the global one while other
        # threads keep incrementing must not corrupt either
        target = MetricsCollector()
        source = MetricsCollector()
        source.increment("merged", 5)
        source.record("s", 1.0)
        source.observe("h", 1.0)

        def work(index, i):
            if index == 0 and i % 100 == 0:
                target.merge(source)
            else:
                target.increment("direct")

        _hammer(work)
        merges = ROUNDS // 100
        direct = (THREADS - 1) * ROUNDS + (ROUNDS - merges)
        assert target.counter("direct") == direct
        assert target.counter("merged") == 5 * merges
        assert len(target.get("s")) == merges
        assert target.histogram("h").total == merges
