"""Fixed-bucket histograms and the Prometheus text exposition."""

import re

import pytest

from repro.metrics.collector import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsCollector,
)
from repro.metrics.exposition import render_prometheus

#: A non-comment exposition line: metric name, optional labels, a value.
_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" (\+Inf|-?[0-9.e+-]+)$"
)


class TestHistogram:
    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=())
        with pytest.raises(ValueError):
            Histogram("h", bounds=(2.0, 1.0))

    def test_observe_counts_and_overflow(self):
        hist = Histogram("h", bounds=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            hist.observe(value)
        # bisect_left: a sample equal to a bound lands in that bucket
        assert hist.counts == [2, 1, 1]
        assert hist.total == 4
        assert hist.sum == pytest.approx(106.5)

    def test_quantile_tracks_exact_percentile_within_a_bucket(self):
        hist = Histogram("h")
        samples = [float(i) for i in range(1, 101)]
        for value in samples:
            hist.observe(value)
        # the estimate may be off by at most the containing bucket width
        for q, exact in ((0.5, 50.5), (0.95, 95.05), (0.99, 99.01)):
            estimate = hist.quantile(q)
            width = next(
                hi - lo
                for lo, hi in zip((0.0,) + DEFAULT_BUCKETS, DEFAULT_BUCKETS)
                if estimate <= hi
            )
            assert abs(estimate - exact) <= width

    def test_quantile_validation(self):
        hist = Histogram("h")
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        with pytest.raises(ValueError, match="empty"):
            hist.quantile(0.5)

    def test_as_dict_and_snapshot_independence(self):
        hist = Histogram("h")
        hist.observe(3.0)
        snap = hist.snapshot()
        hist.observe(4.0)
        assert snap.total == 1 and hist.total == 2
        data = hist.as_dict()
        assert data["count"] == 2
        assert {"p50", "p95", "p99"} <= set(data)

    def test_merge_folds_equal_bounds_and_keeps_ours_otherwise(self):
        one, two = MetricsCollector(), MetricsCollector()
        one.observe("h", 1.0)
        two.observe("h", 2.0)
        two.observe("other", 5.0, buckets=(1.0, 10.0))
        one.merge(two)
        assert one.histogram("h").total == 2
        assert one.histogram("other").total == 1
        # mismatched bounds: ours survive untouched
        three = MetricsCollector()
        three.observe("h", 9.0, buckets=(100.0,))
        one.merge(three)
        assert one.histogram("h").total == 2
        assert one.histogram("h").bounds == DEFAULT_BUCKETS


class TestExposition:
    def _collector(self):
        collector = MetricsCollector()
        collector.increment("fabric.leases_granted", 3)
        collector.increment("fabric.cells_leased", 2, labels={"worker": "w1"})
        collector.increment("fabric.cells_leased", 1, labels={"worker": "w2"})
        collector.observe("fabric.cell_wall_ms", 12.0)
        collector.observe("fabric.cell_wall_ms", 700.0)
        collector.record_many("rounds", [1.0, 2.0, 3.0])
        return collector

    def test_every_line_is_well_formed(self):
        text = render_prometheus(self._collector())
        assert text.endswith("\n")
        for line in text.splitlines():
            if line.startswith("# TYPE "):
                assert re.match(r"^# TYPE repro_[a-zA-Z0-9_:]+ "
                                r"(counter|histogram|summary)$", line)
            else:
                assert _LINE.match(line), f"malformed line: {line!r}"

    def test_names_are_sanitized_and_prefixed(self):
        text = render_prometheus(self._collector())
        assert "repro_fabric_leases_granted 3" in text
        assert "fabric.leases" not in text

    def test_labeled_counters_render_per_label(self):
        text = render_prometheus(self._collector())
        assert 'repro_fabric_cells_leased{worker="w1"} 2' in text
        assert 'repro_fabric_cells_leased{worker="w2"} 1' in text

    def test_histogram_buckets_are_cumulative(self):
        text = render_prometheus(self._collector())
        counts = [
            int(m.group(1))
            for m in re.finditer(
                r'repro_fabric_cell_wall_ms_bucket\{le="[^"]+"\} (\d+)', text
            )
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 2  # the +Inf bucket holds everything
        assert "repro_fabric_cell_wall_ms_count 2" in text

    def test_series_render_as_quantile_summaries(self):
        text = render_prometheus(self._collector())
        assert 'repro_rounds{quantile="0.5"} 2' in text
        assert "repro_rounds_sum 6" in text
        assert "repro_rounds_count 3" in text

    def test_extra_counters_spliced_without_double_counting(self):
        collector = self._collector()
        text = render_prometheus(
            collector,
            extra_counters={
                "oracle.memo_hits": 7,
                "fabric.leases_granted": 999,  # collides: collector wins
            },
        )
        assert "repro_oracle_memo_hits 7" in text
        assert "repro_fabric_leases_granted 3" in text
        assert "999" not in text

    def test_empty_collector_renders_empty(self):
        assert render_prometheus(MetricsCollector()) == ""

    def test_label_values_escaped(self):
        collector = MetricsCollector()
        collector.increment("c", labels={"k": 'a"b\\c\nd'})
        text = render_prometheus(collector)
        assert '{k="a\\"b\\\\c\\nd"}' in text
