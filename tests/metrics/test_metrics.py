"""Tests for metrics collection and report rendering."""

import json

import pytest

from repro.metrics.collector import MetricsCollector, percentile, summarize
from repro.metrics.report import ascii_table, to_csv, to_json, write_report


class TestSummaries:
    def test_summarize(self):
        summary = summarize("x", [1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.median == 2.5
        assert summary.minimum == 1.0 and summary.maximum == 4.0

    def test_single_sample(self):
        summary = summarize("x", [7.0])
        assert summary.stdev == 0.0
        assert summary.p95 == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize("x", [])

    def test_percentile_interpolation(self):
        values = [0.0, 10.0]
        assert percentile(values, 50.0) == 5.0
        assert percentile(values, 0.0) == 0.0
        assert percentile(values, 100.0) == 10.0

    def test_percentile_bounds(self):
        with pytest.raises(ValueError):
            percentile([1.0], 120.0)
        with pytest.raises(ValueError):
            percentile([], 50.0)

    def test_as_dict(self):
        data = summarize("x", [1.0, 2.0]).as_dict()
        assert data["name"] == "x" and data["count"] == 2


class TestCollector:
    def test_record_and_get(self):
        collector = MetricsCollector()
        collector.record("a", 1)
        collector.record_many("a", [2, 3])
        assert collector.get("a") == [1.0, 2.0, 3.0]

    def test_summaries_sorted(self):
        collector = MetricsCollector()
        collector.record("b", 1)
        collector.record("a", 2)
        assert [s.name for s in collector.summaries()] == ["a", "b"]

    def test_merge(self):
        one, two = MetricsCollector(), MetricsCollector()
        one.record("x", 1)
        two.record("x", 2)
        one.merge(two)
        assert one.get("x") == [1.0, 2.0]

    def test_counters_increment(self):
        collector = MetricsCollector()
        assert collector.counter("fabric.reclaims") == 0.0
        collector.increment("fabric.reclaims")
        collector.increment("fabric.reclaims", 3)
        assert collector.counter("fabric.reclaims") == 4.0

    def test_merge_folds_counters(self):
        one, two = MetricsCollector(), MetricsCollector()
        one.increment("c", 1)
        two.increment("c", 2)
        two.increment("d")
        one.merge(two)
        assert one.counter("c") == 3.0
        assert one.counter("d") == 1.0


class TestReports:
    HEADERS = ["algo", "rounds", "time"]
    ROWS = [["wayup", 5, 12.345], ["oneshot", 1, 3.0]]

    def test_ascii_table_alignment(self):
        table = ascii_table(self.HEADERS, self.ROWS, title="demo")
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert all(len(line) == len(lines[1]) for line in lines[1:])
        assert "wayup" in table and "12.345" in table

    def test_bool_rendering(self):
        table = ascii_table(["ok"], [[True], [False]])
        assert "yes" in table and "no" in table

    def test_csv(self):
        text = to_csv(self.HEADERS, self.ROWS)
        assert text.splitlines()[0] == "algo,rounds,time"
        assert "wayup,5,12.345" in text

    def test_json(self):
        records = json.loads(to_json(self.HEADERS, self.ROWS))
        assert records[0]["algo"] == "wayup"
        assert records[1]["rounds"] == 1

    def test_write_report_formats(self, tmp_path):
        for fmt, check in (("csv", "algo,"), ("json", "["), ("ascii", "+")):
            path = tmp_path / f"report.{fmt}"
            write_report(str(path), self.HEADERS, self.ROWS, fmt=fmt)
            assert path.read_text().startswith(check) or check in path.read_text()
        with pytest.raises(ValueError):
            write_report(str(tmp_path / "x"), self.HEADERS, self.ROWS, fmt="pdf")
