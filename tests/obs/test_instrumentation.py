"""The core API emits the spans the trace summaries are built from."""

import pytest

from repro.core.api import ScheduleRequest, execute_request
from repro.core.oracle import clear_registry
from repro.core.problem import UpdateProblem
from repro.obs import configure_tracing, reset_global_tracer


@pytest.fixture
def sink():
    reset_global_tracer()
    clear_registry()  # cold oracles so oracle.build spans appear
    tracer = configure_tracing(ring=4096)
    [ring] = tracer.sinks()
    yield ring
    reset_global_tracer()


def _spans(sink, name):
    return [r for r in sink.records()
            if r["name"] == name and r["kind"] == "span"]


class TestExecuteRequestSpans:
    def test_phases_nest_under_the_request_span(self, sink):
        problem = UpdateProblem([1, 2, 3, 4, 5], [1, 4, 3, 2, 5], waypoint=3)
        result = execute_request(ScheduleRequest(
            problem=problem, scheduler="wayup", verify=True,
        ))
        [request] = _spans(sink, "api.execute_request")
        [search] = _spans(sink, "api.search")
        [verify] = _spans(sink, "api.verify")
        assert search["parent"] == request["span"]
        assert verify["parent"] == request["span"]
        assert search["trace"] == verify["trace"] == request["trace"]
        attrs = request["attrs"]
        assert attrs["scheduler"] == "wayup"
        assert attrs["rounds"] == result.schedule.n_rounds
        assert attrs["wall_ms"] == pytest.approx(result.wall_ms, abs=0.01)

    def test_oracle_deltas_land_on_the_request_span(self, sink):
        problem = UpdateProblem([1, 2, 3, 4], [1, 3, 2, 4])
        result = execute_request(ScheduleRequest(
            problem=problem, scheduler="greedy-slf", verify=True,
        ))
        [request] = _spans(sink, "api.execute_request")
        for key, value in result.oracle_stats.items():
            assert request["attrs"][f"oracle.{key}"] == value

    def test_oracle_build_traced_on_cache_miss_only(self, sink):
        problem = UpdateProblem([1, 2, 3, 4], [1, 3, 2, 4])
        request = ScheduleRequest(problem=problem, scheduler="greedy-slf")
        execute_request(request)
        assert len(_spans(sink, "oracle.build")) == 1
        execute_request(request)  # warm: the shared oracle is reused
        assert len(_spans(sink, "oracle.build")) == 1

    def test_no_verify_no_verify_span(self, sink):
        problem = UpdateProblem([1, 2, 3, 4], [1, 3, 2, 4])
        execute_request(ScheduleRequest(
            problem=problem, scheduler="oneshot", verify=False,
        ))
        assert _spans(sink, "api.verify") == []
        assert len(_spans(sink, "api.execute_request")) == 1
