"""Tests for trace analysis: phase summaries and cell lifecycles."""

import json

from repro.obs.analysis import (
    load_trace,
    reconstruct_cell_lifecycles,
    summarize_trace,
    verify_lifecycles,
)


def _span(name, trace="t0", dur_ms=1.0, status="ok", **attrs):
    return {
        "kind": "span", "name": name, "trace": trace, "span": "s",
        "parent": None, "pid": 1, "ts": 0.0, "dur_ms": dur_ms,
        "status": status, "attrs": attrs,
    }


def _event(name, trace="t0", **attrs):
    return {
        "kind": "event", "name": name, "trace": trace, "span": "s",
        "parent": None, "pid": 1, "ts": 0.0, "status": "ok",
        "attrs": attrs,
    }


def _cell_records(cell_id, trace):
    """A complete happy-path lifecycle for one cell on one trace."""
    run_span = _span("campaign.cell", trace=trace)
    run_span["attrs"] = {"cell_id": cell_id, "status": "ok"}
    return [
        _event("fabric.lease_cell", trace=trace, cell_id=cell_id),
        _span("fabric.cell", trace=trace, cell_id=cell_id),
        run_span,
        _span("api.execute_request", trace=trace),
        _span("fabric.rpc.submit", trace=trace, cell_id=cell_id),
        _span("fabric.submit", trace=trace, cell_id=cell_id,
              outcome="accepted"),
    ]


class TestSummarize:
    def test_rows_aggregate_by_name(self):
        records = [
            _span("search", dur_ms=2.0),
            _span("search", dur_ms=4.0),
            _span("verify", dur_ms=1.0, status="error"),
            _event("milestone"),
        ]
        rows = summarize_trace(records)
        assert [r["name"] for r in rows] == ["search", "verify", "milestone"]
        search = rows[0]
        assert search["count"] == 2
        assert search["total_ms"] == 6.0
        assert search["mean_ms"] == 3.0
        assert search["p50_ms"] == 3.0
        assert search["max_ms"] == 4.0
        assert rows[1]["errors"] == 1
        assert rows[2] == {
            "name": "milestone", "count": 1, "errors": 0, "total_ms": 0.0,
            "mean_ms": 0.0, "p50_ms": 0.0, "p95_ms": 0.0, "max_ms": 0.0,
        }

    def test_events_fold_into_same_named_spans(self):
        rows = summarize_trace([_span("x", dur_ms=1.0), _event("x")])
        [row] = rows
        assert row["count"] == 1  # the span; the event is not double-listed

    def test_nameless_records_skipped(self):
        assert summarize_trace([{"kind": "span", "dur_ms": 1.0}]) == []


class TestLoadTrace:
    def test_directory_merges_all_jsonl_files(self, tmp_path):
        (tmp_path / "trace-1.jsonl").write_text(
            json.dumps(_span("a")) + "\n", encoding="utf-8"
        )
        (tmp_path / "trace-2.jsonl").write_text(
            json.dumps(_span("b")) + "\n" + '{"torn', encoding="utf-8"
        )
        names = sorted(r["name"] for r in load_trace(tmp_path))
        assert names == ["a", "b"]

    def test_single_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps(_span("only")) + "\n", encoding="utf-8")
        assert [r["name"] for r in load_trace(path)] == ["only"]


class TestLifecycles:
    def test_happy_path_is_complete_and_verifies(self):
        records = _cell_records("c0", "t0") + _cell_records("c1", "t1")
        cells = reconstruct_cell_lifecycles(records)
        assert sorted(cells) == ["c0", "c1"]
        state = cells["c0"]
        assert state.leases == 1
        assert state.accepted_submits == 1
        assert state.run_statuses == ["ok"]
        assert state.complete
        assert verify_lifecycles(records, ["c0", "c1"]) == []

    def test_reclaim_retry_and_duplicate_submits_tallied(self):
        records = (
            _cell_records("c0", "t0")
            + [
                _event("fabric.reclaim_cell", cell_id="c0", reason="dead"),
                _event("fabric.retry_cell", cell_id="c0", attempts=1),
                _span("fabric.submit", trace="t9", cell_id="c0",
                      outcome="duplicate", stale=True),
            ]
        )
        state = reconstruct_cell_lifecycles(records)["c0"]
        assert state.reclaims == 1
        assert state.retries == 1
        assert state.duplicate_submits == 1
        assert state.stale_submits == 1
        assert state.accepted_submits == 1  # the duplicate was a no-op
        assert verify_lifecycles(records, ["c0"]) == []

    def test_missing_cell_reported(self):
        problems = verify_lifecycles([], ["ghost"])
        assert problems == ["ghost: no trace records at all"]

    def test_never_leased_and_never_settled(self):
        records = [_span("fabric.cell", cell_id="c0")]
        problems = verify_lifecycles(records, ["c0"])
        assert any("never leased" in p for p in problems)
        assert any("never settled" in p for p in problems)

    def test_double_accept_is_a_problem(self):
        records = _cell_records("c0", "t0") + [
            _span("fabric.submit", trace="t1", cell_id="c0",
                  outcome="accepted"),
        ]
        problems = verify_lifecycles(records, ["c0"])
        assert any("2 accepted submits" in p for p in problems)

    def test_ok_run_without_phase_spans_is_a_problem(self):
        records = [r for r in _cell_records("c0", "t0")
                   if r["name"] != "api.execute_request"]
        problems = verify_lifecycles(records, ["c0"])
        assert any("without schedule phase spans" in p for p in problems)

    def test_orphaned_accept_trace_is_a_problem(self):
        # the accept span sits on a trace with no worker-side spans at
        # all -- stitching across the HTTP boundary failed
        records = [
            _event("fabric.lease_cell", cell_id="c0"),
            _span("campaign.cell", trace="t-worker", cell_id="c0",
                  status="ok") | {"attrs": {"cell_id": "c0", "status": "ok"}},
            _span("api.execute_request", trace="t-worker"),
            _span("fabric.submit", trace="t-lonely", cell_id="c0",
                  outcome="accepted"),
        ]
        problems = verify_lifecycles(records, ["c0"])
        assert any("orphaned" in p for p in problems)

    def test_terminal_error_counts_as_settled(self):
        records = [
            _event("fabric.lease_cell", cell_id="c0"),
            _event("fabric.fail_cell", cell_id="c0", detail="boom"),
            _event("fabric.terminal_error", cell_id="c0", attempts=3),
        ]
        state = reconstruct_cell_lifecycles(records)["c0"]
        assert state.transient_failures == 1
        assert state.terminal_errors == 1
        assert state.complete
        assert verify_lifecycles(records, ["c0"]) == []
