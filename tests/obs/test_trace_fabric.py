"""Trace-id propagation across the HTTP fabric boundary.

The coordinator handles worker RPCs on server threads with fresh
``contextvars`` contexts, so any stitching between a worker's spans and
the coordinator's accept/lifecycle spans can only come from the
``X-Repro-Trace`` / ``X-Repro-Span`` headers the HTTP binding carries.
These tests run real workers against a real HTTP server with the ring
sink armed and assert the merged trace stitches -- including under
chaos-injected duplicated and delayed submits, which must surface as
flagged no-ops, never as duplicate or orphaned accept spans.
"""

import threading

import pytest

from repro.campaign import CampaignSpec
from repro.campaign.fabric import ChaosConfig, FabricWorker, HttpFabricClient
from repro.obs import (
    RingBufferSink,
    configure_tracing,
    reconstruct_cell_lifecycles,
    reset_global_tracer,
    verify_lifecycles,
)
from repro.rest.api import build_campaign_api
from repro.rest.http_binding import RestHttpServer

SPEC = {
    "name": "obsfab",
    "seed": 11,
    "families": [{"family": "reversal", "sizes": [4, 6], "repeats": 2}],
    "schedulers": ["peacock", "greedy-slf"],
}
N_CELLS = 8


@pytest.fixture(autouse=True)
def _traced():
    reset_global_tracer()
    tracer = configure_tracing(ring=16384)
    [sink] = tracer.sinks()
    yield sink
    reset_global_tracer()


@pytest.fixture
def server(tmp_path):
    api = build_campaign_api(campaign_root=str(tmp_path))
    http = RestHttpServer(api, port=0)
    http.start()
    yield api, http
    http.stop()
    api.campaigns.close()


def _run_fleet(server, sink, chaos=None, n_workers=1, **serve_options):
    """Serve SPEC over HTTP, drain it with ``n_workers`` thread workers.

    ``chaos`` (if given) afflicts worker 0 only; the rest stay healthy.
    """
    api, http = server
    spec = CampaignSpec.from_dict(SPEC)
    api.campaigns.serve({
        "spec": spec.to_dict(),
        "lease_ttl_s": 2.0,
        "heartbeat_interval_s": 0.1,
        "lease_cells": 2,
        **serve_options,
    })
    coordinator = api.campaigns.fabric(spec.campaign_id)
    workers = [
        FabricWorker(
            HttpFabricClient(http.url, spec.campaign_id),
            name=f"tw{i}", chaos=chaos if i == 0 else None,
        )
        for i in range(n_workers)
    ]
    threads = [threading.Thread(target=w.run, daemon=True) for w in workers[1:]]
    for thread in threads:
        thread.start()
    workers[0].run()
    for thread in threads:
        thread.join(timeout=30)
    coordinator.close()
    assert coordinator.finished
    return spec, coordinator, sink.records()


class TestHttpPropagation:
    def test_accept_spans_join_worker_traces_via_headers(self, server, _traced):
        spec, coordinator, records = _run_fleet(server, _traced)
        cells = reconstruct_cell_lifecycles(records)
        assert len(cells) == N_CELLS
        # every accepted coordinator-side submit span must share its
        # trace with the worker-side run span of the same cell -- the
        # server thread only knows that trace id from the HTTP headers
        for state in cells.values():
            assert state.accepted_submits == 1
            assert state.accept_traces <= state.run_traces, (
                f"{state.cell_id}: accept trace not stitched to its run"
            )
        expected = [cell.cell_id for cell in spec.expand()]
        assert verify_lifecycles(records, expected) == []

    def test_each_cell_attempt_is_its_own_trace(self, server, _traced):
        spec, coordinator, records = _run_fleet(server, _traced)
        roots = [r for r in records
                 if r["name"] == "fabric.cell" and r["kind"] == "span"]
        assert len(roots) == N_CELLS
        assert len({r["trace"] for r in roots}) == N_CELLS

    def test_rpc_spans_cover_the_protocol(self, server, _traced):
        _run_fleet(server, _traced)
        names = {r["name"] for r in _traced.records()}
        assert {"fabric.rpc.register", "fabric.rpc.lease",
                "fabric.rpc.submit", "fabric.submit",
                "fabric.lease_cell", "campaign.cell",
                "api.execute_request"} <= names


class TestChaosDoesNotCorruptTraces:
    def test_duplicated_submits_stay_single_accepts(self, server, _traced):
        # every submit is sent twice; the second must trace as a flagged
        # duplicate, never as a second accept or an orphaned span
        chaos = ChaosConfig(duplicate_submits=tuple(range(N_CELLS)))
        spec, coordinator, records = _run_fleet(server, _traced, chaos=chaos)
        assert coordinator.counters["duplicate_submits"] >= 1
        cells = reconstruct_cell_lifecycles(records)
        assert sum(s.duplicate_submits for s in cells.values()) >= 1
        for state in cells.values():
            assert state.accepted_submits == 1
        expected = [cell.cell_id for cell in spec.expand()]
        assert verify_lifecycles(records, expected) == []

    def test_delayed_stale_submit_traces_clean(self, server, _traced):
        # worker freezes heartbeats and naps before its first submit, so
        # the lease is reclaimed and the submit arrives stale -- the
        # trace must show the reclaim and the stale flag, and still
        # settle every cell exactly once with no orphans
        chaos = ChaosConfig(freeze_heartbeats_after=0,
                            delay_submits={0: 0.8})
        spec, coordinator, records = _run_fleet(
            server, _traced, chaos=chaos, n_workers=2,
            lease_cells=1, lease_ttl_s=0.3, heartbeat_timeout_s=0.2,
        )
        assert coordinator.counters["reclaims"] >= 1
        cells = reconstruct_cell_lifecycles(records)
        assert sum(s.reclaims for s in cells.values()) >= 1
        assert sum(s.stale_submits for s in cells.values()) >= 1
        for state in cells.values():
            assert state.accepted_submits == 1
        expected = [cell.cell_id for cell in spec.expand()]
        assert verify_lifecycles(records, expected) == []
