"""Tests for the tracing core: spans, context, sinks, arming."""

import json
import os

import pytest

from repro.obs.trace import (
    JsonlSink,
    RingBufferSink,
    Tracer,
    attach_context,
    configure_tracing,
    current_context,
    detach_context,
    disable_tracing,
    event,
    global_tracer,
    read_jsonl,
    reset_global_tracer,
    root_span,
    span,
    tracing_enabled,
)


@pytest.fixture(autouse=True)
def _isolated_tracer(monkeypatch):
    """Every test starts and ends with no global tracer and no env arming."""
    monkeypatch.delenv("REPRO_TRACE_DIR", raising=False)
    reset_global_tracer()
    yield
    reset_global_tracer()


def _ring_tracer():
    tracer = Tracer()
    sink = RingBufferSink()
    tracer.add_sink(sink)
    return tracer, sink


class TestSpans:
    def test_nested_spans_share_trace_and_chain_parents(self):
        tracer, sink = _ring_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        inner_rec, outer_rec = sink.records()  # children finish first
        assert inner_rec["name"] == "inner"
        assert inner_rec["parent"] == outer_rec["span"]
        assert inner_rec["trace"] == outer_rec["trace"]
        assert outer_rec["parent"] is None

    def test_record_shape(self):
        tracer, sink = _ring_tracer()
        with tracer.span("x", key="v"):
            pass
        [record] = sink.records()
        assert record["kind"] == "span"
        assert record["status"] == "ok"
        assert record["pid"] == os.getpid()
        assert record["dur_ms"] >= 0.0
        assert record["attrs"] == {"key": "v"}

    def test_root_span_opens_fresh_trace(self):
        tracer, sink = _ring_tracer()
        with tracer.span("outer") as outer:
            with tracer.root_span("fresh") as fresh:
                assert fresh.trace_id != outer.trace_id
                assert fresh.parent_id is None
                # children of the root span join the *fresh* trace
                with tracer.span("child") as child:
                    assert child.trace_id == fresh.trace_id

    def test_exception_marks_span_error(self):
        tracer, sink = _ring_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("no")
        [record] = sink.records()
        assert record["status"] == "error"
        assert record["attrs"]["error"] == "RuntimeError"

    def test_set_attr_and_set_attrs(self):
        tracer, sink = _ring_tracer()
        with tracer.span("x") as live:
            live.set_attr("a", 1)
            live.set_attrs({"b": 2}, c=3)
        [record] = sink.records()
        assert record["attrs"] == {"a": 1, "b": 2, "c": 3}

    def test_end_is_idempotent(self):
        tracer, sink = _ring_tracer()
        live = tracer.span("x")
        live.end()
        live.end(status="error")  # second end changes nothing
        [record] = sink.records()
        assert record["status"] == "ok"

    def test_events_attach_to_current_span(self):
        tracer, sink = _ring_tracer()
        with tracer.span("outer") as outer:
            tracer.event("pinged", n=3)
        ev, _ = sink.records()
        assert ev["kind"] == "event"
        assert ev["trace"] == outer.trace_id
        assert ev["parent"] == outer.span_id
        assert ev["attrs"] == {"n": 3}
        assert "dur_ms" not in ev


class TestDisabledPath:
    def test_disabled_returns_the_shared_noop(self):
        assert not tracing_enabled()
        one, two = span("a"), root_span("b")
        assert one is two  # the shared singleton
        event("c", k=1)  # no sink, must not raise
        with one as live:
            live.set_attr("x", 1)
            live.set_attrs({"y": 2}, z=3)
            assert live.context is None
        one.end()

    def test_disable_tracing_drops_sinks(self):
        configure_tracing(ring=8)
        assert tracing_enabled()
        disable_tracing()
        assert not tracing_enabled()

    def test_noop_span_does_not_set_context(self):
        with span("off"):
            assert current_context() is None


class TestSinks:
    def test_jsonl_sink_round_trips(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        sink.write({"kind": "event", "name": "a"})
        sink.write({"kind": "span", "name": "b"})
        sink.close()
        names = [r["name"] for r in read_jsonl(path)]
        assert names == ["a", "b"]

    def test_write_after_close_is_noop(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        sink.close()
        sink.write({"name": "late"})
        sink.close()
        assert list(read_jsonl(path)) == []

    def test_read_jsonl_skips_torn_trailing_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps({"name": "whole"}) + "\n" + '{"name": "to',
            encoding="utf-8",
        )
        assert [r["name"] for r in read_jsonl(path)] == ["whole"]

    def test_read_jsonl_skips_blank_and_nondict_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('\n[1, 2]\n{"name": "ok"}\n', encoding="utf-8")
        assert [r["name"] for r in read_jsonl(path)] == ["ok"]

    def test_ring_buffer_evicts_oldest(self):
        sink = RingBufferSink(capacity=2)
        for i in range(4):
            sink.write({"i": i})
        assert [r["i"] for r in sink.records()] == [2, 3]
        sink.clear()
        assert sink.records() == []


class TestContextPropagation:
    def test_attach_detach_round_trip(self):
        token = attach_context({"trace": "t1", "parent": "p1"})
        try:
            assert current_context() == {"trace": "t1", "parent": "p1"}
        finally:
            detach_context(token)
        assert current_context() is None

    def test_attach_none_clears_context(self):
        outer = attach_context({"trace": "t1", "parent": "p1"})
        inner = attach_context(None)
        assert current_context() is None
        detach_context(inner)
        assert current_context() == {"trace": "t1", "parent": "p1"}
        detach_context(outer)

    def test_span_under_attached_context_joins_remote_trace(self):
        configure_tracing(ring=8)
        token = attach_context({"trace": "remote-trace", "parent": "remote-span"})
        try:
            with span("local") as live:
                assert live.trace_id == "remote-trace"
                assert live.parent_id == "remote-span"
        finally:
            detach_context(token)


class TestGlobalArming:
    def test_configure_tracing_ring(self):
        tracer = configure_tracing(ring=16)
        assert tracer is global_tracer()
        with span("x"):
            pass
        [sink] = tracer.sinks()
        assert [r["name"] for r in sink.records()] == ["x"]

    def test_env_var_arms_per_process_jsonl(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        reset_global_tracer()
        with span("armed"):
            pass
        reset_global_tracer()
        path = tmp_path / f"trace-{os.getpid()}.jsonl"
        assert [r["name"] for r in read_jsonl(path)] == ["armed"]

    def test_configure_directory_names_file_by_pid(self, tmp_path):
        configure_tracing(directory=tmp_path)
        with span("x"):
            pass
        reset_global_tracer()
        assert (tmp_path / f"trace-{os.getpid()}.jsonl").is_file()
