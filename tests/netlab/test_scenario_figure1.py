"""End-to-end tests for the scenario runner and the Figure 1 demo."""

import pytest

from repro.dataplane.violations import PacketFate
from repro.netlab.figure1 import (
    build_figure1_scenario,
    figure1_problem,
    run_figure1,
)
from repro.netlab.scenario import UpdateScenario, final_path_of
from repro.topology.builders import figure1, figure1_paths


class TestFigure1WayUp:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure1(algorithm="wayup", seed=1)

    def test_no_violations(self, result):
        assert result.violations == 0
        assert result.traffic.counters.bypassed_waypoint == 0
        assert result.traffic.counters.looped == 0
        assert result.traffic.counters.dropped == 0

    def test_all_probes_delivered(self, result):
        counters = result.traffic.counters
        assert counters.delivered == counters.injected > 0

    def test_five_rounds(self, result):
        assert result.rounds == 5
        assert len(result.round_durations_ms) == 5

    def test_verified(self, result):
        assert result.verified is True

    def test_update_time_positive(self, result):
        assert result.update_duration_ms > 0
        assert result.update_duration_ms >= sum(result.round_durations_ms) - 1e-6

    def test_every_probe_crossed_waypoint(self, result):
        _, _, waypoint = figure1_paths()
        for trace in result.traffic.traces:
            if trace.fate is PacketFate.DELIVERED:
                assert waypoint in trace.path


class TestFigure1Baselines:
    def test_oneshot_violates_under_jitter(self):
        result = run_figure1(
            algorithm="oneshot", seed=3, channel_latency="uniform:0.5:8"
        )
        assert result.violations > 0
        assert result.verified is False

    def test_peacock_never_loops_but_may_bypass(self):
        result = run_figure1(algorithm="peacock", seed=2)
        assert result.traffic.counters.looped == 0
        assert result.traffic.counters.dropped == 0

    def test_two_phase_clean_but_more_rules(self):
        clean = run_figure1(algorithm="two-phase", seed=4)
        wayup = run_figure1(algorithm="wayup", seed=4)
        assert clean.violations == 0
        assert clean.flow_mods > wayup.flow_mods

    def test_sequential_also_safe(self):
        result = run_figure1(algorithm="sequential", seed=5)
        # one node per round: WPE-safe orders are not guaranteed by
        # sequential, but the default order (installs first) happens to
        # keep delivery alive; at minimum nothing is dropped permanently
        final = result.traffic.traces[-1]
        assert final.fate is PacketFate.DELIVERED


class TestScenarioMechanics:
    def test_final_path_is_new_path(self):
        scenario = build_figure1_scenario(algorithm="wayup", seed=1)
        scenario.run()
        path = final_path_of(scenario.network, "h1", "h2")
        old_path, new_path, _ = figure1_paths()
        assert path == list(new_path.nodes)

    def test_initial_path_check_runs(self):
        scenario = build_figure1_scenario(algorithm="wayup", seed=1)
        scenario.prepare()
        path = final_path_of(scenario.network, "h1", "h2")
        old_path, _, _ = figure1_paths()
        assert path == list(old_path.nodes)

    def test_probe_traffic_spans_update(self):
        result = run_figure1(algorithm="wayup", seed=1, probe_interval_ms=0.5)
        times = [t.injected_ms for t in result.traffic.traces]
        assert min(times) <= result.update_duration_ms
        assert len(times) >= result.update_duration_ms / 0.5 * 0.5

    def test_custom_scenario_without_waypoint(self):
        from repro.core.problem import UpdateProblem
        from repro.topology.graph import Topology

        topo = Topology()
        for dpid in (1, 2, 3, 4):
            topo.add_switch(dpid)
        topo.add_link(1, 2)
        topo.add_link(2, 4)
        topo.add_link(1, 3)
        topo.add_link(3, 4)
        topo.add_host("h1")
        topo.add_host("h2")
        topo.add_link("h1", 1)
        topo.add_link("h2", 4)
        problem = UpdateProblem([1, 2, 4], [1, 3, 4])
        scenario = UpdateScenario(
            topo=topo, problem=problem, source_host="h1",
            destination_host="h2", algorithm="peacock", seed=0,
        )
        result = scenario.run()
        assert result.traffic.counters.delivered > 0
        assert final_path_of(scenario.network, "h1", "h2") == [1, 3, 4]

    def test_perhop_mode_runs(self):
        result = run_figure1(algorithm="wayup", seed=2, packet_mode="perhop")
        counters = result.traffic.counters
        assert counters.injected > 0
        assert counters.in_flight == 0  # everything resolved by flush
