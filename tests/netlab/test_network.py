"""Tests for the network lab: boot, rules, injection, tracing."""

import pytest

from repro.controller.rules import compile_initial_rules
from repro.core.problem import UpdateProblem
from repro.dataplane.violations import PacketFate
from repro.errors import ScenarioError
from repro.netlab.network import Network
from repro.openflow.match import Match
from repro.topology.builders import figure1, linear


@pytest.fixture
def net():
    network = Network(linear(3, with_hosts=True), seed=0)
    network.start()
    return network


class TestBoot:
    def test_all_switches_handshake(self, net):
        assert net.controller.connected_dpids == [1, 2, 3]

    def test_hosts_attached(self, net):
        h1 = net.host("h1")
        assert h1.switch_dpid == 1
        assert h1.ip == "10.0.0.1"
        assert net.host("h2").switch_dpid == 3

    def test_unknown_lookup(self, net):
        with pytest.raises(ScenarioError):
            net.host("h9")
        with pytest.raises(ScenarioError):
            net.switch(99)

    def test_start_idempotent(self, net):
        net.start()  # second call is a no-op

    def test_bad_packet_mode(self):
        with pytest.raises(ScenarioError):
            Network(linear(2), packet_mode="teleport")

    def test_host_needs_single_attachment(self):
        topo = linear(2)
        topo.add_host("h1")
        topo.add_link("h1", 1)
        topo.add_link("h1", 2)
        with pytest.raises(ScenarioError, match="exactly one"):
            Network(topo)


def _install_line_rules(net: Network, match: Match) -> None:
    problem = UpdateProblem([1, 2, 3], [1, 2, 3])
    # install old-path rules by hand: 1->2->3->h2
    mods = compile_initial_rules(
        net.topo, UpdateProblem([1, 2, 3], [1, 2, 3]), match,
        egress_port=net.host("h2").switch_port,
    )
    net.send_flow_mods(mods)
    net.flush()


class TestInjectionInstant:
    def test_delivery(self, net):
        match = Match(eth_type=0x0800, ipv4_dst=net.host("h2").ip)
        _install_line_rules(net, match)
        trace = net.inject_from_host(
            "h1", net.default_packet("h1", "h2"), destination_host="h2"
        )
        assert trace.fate is PacketFate.DELIVERED
        assert trace.path == [1, 2, 3]
        assert trace.completed_ms == net.sim.now

    def test_drop_without_rules(self, net):
        trace = net.inject_from_host(
            "h1", net.default_packet("h1", "h2"), destination_host="h2"
        )
        assert trace.fate is PacketFate.DROPPED
        assert trace.path == [1]

    def test_waypoint_bypass_detected(self, net):
        match = Match(eth_type=0x0800, ipv4_dst=net.host("h2").ip)
        _install_line_rules(net, match)
        trace = net.inject_from_host(
            "h1", net.default_packet("h1", "h2"),
            waypoint=99,  # not on the path
            destination_host="h2",
        )
        assert trace.fate is PacketFate.BYPASSED_WAYPOINT

    def test_loop_detected(self, net):
        # 1 -> 2 and 2 -> 1: a deterministic loop
        from repro.openflow.flowmod import add_flow

        match = Match(eth_type=0x0800, ipv4_dst=net.host("h2").ip)
        net.send_flow_mods({
            1: [add_flow(match, out_port=net.topo.port_between(1, 2))],
            2: [add_flow(match, out_port=net.topo.port_between(2, 1))],
        })
        net.flush()
        trace = net.inject_from_host(
            "h1", net.default_packet("h1", "h2"), destination_host="h2"
        )
        assert trace.fate is PacketFate.LOOPED

    def test_wrong_host_counts_as_drop(self, net):
        from repro.openflow.flowmod import add_flow

        match = Match(eth_type=0x0800, ipv4_dst=net.host("h2").ip)
        # route back out to h1's own port
        net.send_flow_mods({
            1: [add_flow(match, out_port=net.host("h1").switch_port)],
        })
        net.flush()
        trace = net.inject_from_host(
            "h1", net.default_packet("h1", "h2"), destination_host="h2"
        )
        assert trace.fate is PacketFate.DROPPED


class TestInjectionPerHop:
    def test_delivery_takes_link_latency(self):
        network = Network(linear(3, with_hosts=True), seed=0, packet_mode="perhop")
        network.start()
        match = Match(eth_type=0x0800, ipv4_dst=network.host("h2").ip)
        _install_line_rules(network, match)
        start = network.sim.now
        trace = network.inject_from_host(
            "h1", network.default_packet("h1", "h2"), destination_host="h2"
        )
        assert trace.fate is PacketFate.IN_FLIGHT
        network.flush()
        assert trace.fate is PacketFate.DELIVERED
        # three links at 1ms default latency: s1->s2->s3->h2
        assert trace.completed_ms - start >= 3.0 - 1e-9

    def test_hop_budget_terminates_loops(self):
        from repro.openflow.flowmod import add_flow

        network = Network(
            linear(3, with_hosts=True), seed=0, packet_mode="perhop", max_hops=6
        )
        network.start()
        match = Match(eth_type=0x0800, ipv4_dst=network.host("h2").ip)
        network.send_flow_mods({
            1: [add_flow(match, out_port=network.topo.port_between(1, 2))],
            2: [add_flow(match, out_port=network.topo.port_between(2, 1))],
        })
        network.flush()
        trace = network.inject_from_host(
            "h1", network.default_packet("h1", "h2"), destination_host="h2"
        )
        network.flush()
        assert trace.fate is PacketFate.LOOPED


class TestFigure1Network:
    def test_boots(self):
        network = Network(figure1(with_hosts=True), seed=1)
        network.start()
        assert len(network.controller.connected_dpids) == 12
        stats = network.channel_stats()
        assert all(s.to_switch_delivered > 0 for s in stats.values())
