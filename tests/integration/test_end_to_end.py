"""Cross-module integration tests: the whole system, several angles."""

import pytest

from repro.core.hardness import reversal_instance
from repro.core.problem import UpdateProblem
from repro.core.verify import Property, verify_schedule
from repro.dataplane.violations import PacketFate
from repro.netlab.figure1 import run_figure1
from repro.netlab.scenario import UpdateScenario, final_path_of
from repro.switch.latency import HARDWARE_PROFILE, OVS_PROFILE
from repro.topology.builders import figure1, linear
from repro.topology.random_graphs import erdos_renyi, random_simple_path


class TestDemoMatrix:
    """The paper's demo across the algorithm matrix, one seed each."""

    @pytest.mark.parametrize("algorithm,expect_clean", [
        ("wayup", True),
        ("two-phase", True),
        ("peacock", False),   # may bypass the waypoint (not its contract)
        ("oneshot", False),
    ])
    def test_violation_profile(self, algorithm, expect_clean):
        result = run_figure1(
            algorithm=algorithm, seed=7, channel_latency="uniform:0.5:6"
        )
        if expect_clean:
            assert result.violations == 0, result.as_dict()
        # regardless of algorithm, the final state must forward correctly
        final = result.traffic.traces[-1]
        assert final.fate is PacketFate.DELIVERED

    def test_wayup_seed_sweep(self):
        for seed in range(5):
            result = run_figure1(
                algorithm="wayup", seed=seed, channel_latency="uniform:0.2:4"
            )
            assert result.traffic.counters.bypassed_waypoint == 0, seed

    def test_update_time_scales_with_rounds(self):
        oneshot = run_figure1(algorithm="oneshot", seed=1)
        wayup = run_figure1(algorithm="wayup", seed=1)
        assert wayup.rounds > oneshot.rounds
        assert wayup.update_duration_ms > oneshot.update_duration_ms

    def test_hardware_profile_slows_update(self):
        fast = run_figure1(algorithm="wayup", seed=1, timing=OVS_PROFILE)
        slow = run_figure1(algorithm="wayup", seed=1, timing=HARDWARE_PROFILE)
        assert slow.update_duration_ms > 3 * fast.update_duration_ms


class TestRandomTopologyScenarios:
    def test_update_on_random_graph(self):
        topo = erdos_renyi(10, 0.4, seed=5)
        old = random_simple_path(topo, 1, 10, seed=1)
        new = random_simple_path(topo, 1, 10, seed=9)
        if old == new:
            pytest.skip("sampled identical paths")
        topo.add_host("h1")
        topo.add_host("h2")
        topo.add_link("h1", 1)
        topo.add_link("h2", 10)
        problem = UpdateProblem(old, new)
        scenario = UpdateScenario(
            topo=topo, problem=problem, source_host="h1",
            destination_host="h2", algorithm="peacock", seed=0,
        )
        result = scenario.run()
        assert result.traffic.counters.looped == 0
        assert final_path_of(scenario.network, "h1", "h2") == list(new.nodes)


class TestReversalOnTheWire:
    """The E3 separation executes faithfully on the full substrate."""

    def _topo_for(self, problem):
        topo = linear(0) if False else None
        from repro.topology.graph import Topology

        topo = Topology(name="reversal")
        for node in sorted(problem.nodes):
            topo.add_switch(node)
        seen = set()
        for path in (problem.old_path, problem.new_path):
            for u, v in path.edges():
                if frozenset((u, v)) not in seen:
                    seen.add(frozenset((u, v)))
                    topo.add_link(u, v)
        topo.add_host("h1")
        topo.add_host("h2")
        topo.add_link("h1", problem.source)
        topo.add_link("h2", problem.destination)
        return topo

    @pytest.mark.parametrize("algorithm", ["peacock", "greedy-slf"])
    def test_loop_free_execution(self, algorithm):
        problem = reversal_instance(7)
        scenario = UpdateScenario(
            topo=self._topo_for(problem),
            problem=problem,
            source_host="h1",
            destination_host="h2",
            algorithm=algorithm,
            seed=3,
        )
        result = scenario.run()
        assert result.traffic.counters.looped == 0
        assert result.traffic.counters.dropped == 0
        assert result.verified is True

    def test_peacock_fewer_rounds_live(self):
        problem = reversal_instance(7)
        runs = {}
        for algorithm in ("peacock", "greedy-slf"):
            scenario = UpdateScenario(
                topo=self._topo_for(problem),
                problem=problem,
                source_host="h1",
                destination_host="h2",
                algorithm=algorithm,
                seed=3,
            )
            runs[algorithm] = scenario.run()
        assert runs["peacock"].rounds < runs["greedy-slf"].rounds
        assert (
            runs["peacock"].update_duration_ms
            < runs["greedy-slf"].update_duration_ms
        )


class TestModelVsSimulation:
    """The analytic cost model tracks the simulated update time (E5)."""

    def test_prediction_within_factor_two(self):
        from repro.core.cost import CostModel, schedule_update_time
        from repro.core.wayup import wayup_schedule
        from repro.netlab.figure1 import figure1_problem

        result = run_figure1(algorithm="wayup", seed=1, channel_latency=1.0)
        schedule = wayup_schedule(figure1_problem())
        cost = CostModel(rtt_ms=2.0, install_ms=0.3, barrier_ms=0.05)
        predicted = schedule_update_time(schedule, cost)
        assert predicted == pytest.approx(result.update_duration_ms, rel=0.5)


class TestVerifierOnExecutedSchedules:
    def test_executed_wayup_schedule_matches_verifier(self):
        """What the controller executes is exactly what was verified."""
        from repro.core.wayup import wayup_schedule
        from repro.netlab.figure1 import build_figure1_scenario, figure1_problem

        scenario = build_figure1_scenario(algorithm="wayup", seed=1)
        result = scenario.run()
        schedule = wayup_schedule(figure1_problem())
        assert result.rounds == schedule.n_rounds
        report = verify_schedule(
            schedule, properties=(Property.WPE, Property.BLACKHOLE)
        )
        assert report.ok
        # and the dataplane agreed: zero violations observed
        assert result.violations == 0
