"""Public-API snapshot: the exported surface is pinned, not accidental.

Any change to ``repro.__all__`` or ``repro.core.__all__`` must be made
*here too*, on purpose -- CI runs this module as a dedicated step
(``make api-surface``), so a refactor cannot silently drop or rename
public names the way the pre-registry scheduler maps could.
"""

import repro
import repro.core

#: The top-level ``repro`` surface.  Update deliberately.
REPRO_ALL = [
    "CostModel",
    "JointUpdateProblem",
    "Path",
    "Property",
    "ReproError",
    "RuleState",
    "ScheduleRequest",
    "ScheduleResult",
    "Scheduler",
    "Topology",
    "TwoPhaseSchedule",
    "UpdateKind",
    "UpdateProblem",
    "UpdateSchedule",
    "VerificationReport",
    "Violation",
    "__version__",
    "execute_request",
    "figure1",
    "figure1_paths",
    "greedy_joint_schedule",
    "greedy_slf_schedule",
    "merge_isolated_schedules",
    "minimal_round_schedule",
    "oneshot_schedule",
    "peacock_schedule",
    "register_scheduler",
    "resolve_scheduler",
    "schedule_update",
    "schedule_update_time",
    "scheduler_names",
    "sequential_schedule",
    "trace_walk",
    "two_phase_schedule",
    "verify_exhaustive",
    "verify_schedule",
    "wayup_schedule",
]

#: The ``repro.core`` surface.  Update deliberately.
CORE_ALL = [
    "Configuration",
    "CostModel",
    "DEFAULT_MAX_NODES",
    "EdgeChoice",
    "HARDWARE_TCAM",
    "JointUpdateProblem",
    "MergedPlan",
    "NEW_VERSION_TAG",
    "NodePhase",
    "OLD_VERSION_TAG",
    "OVS_FAST",
    "OVS_LOADED",
    "OracleStats",
    "PRESETS",
    "PolicyView",
    "Property",
    "RuleState",
    "SCHEDULER_REGISTRY",
    "SafetyOracle",
    "ScheduleRequest",
    "ScheduleResult",
    "Scheduler",
    "SchedulerDefinition",
    "SchedulerRun",
    "TwoPhaseSchedule",
    "UnionGraph",
    "UpdateKind",
    "UpdateProblem",
    "UpdateSchedule",
    "VerificationReport",
    "Violation",
    "WAN_CONTROL",
    "WAYUP_ROUND_NAMES",
    "WalkResult",
    "WaypointClasses",
    "aggregate_stats",
    "cannot_be_last",
    "check_blackhole",
    "check_rlf",
    "check_slf",
    "check_wpe",
    "classify_forward_backward",
    "combined_greedy_schedule",
    "crossing_clash_instance",
    "crossing_instance",
    "default_properties",
    "dependency_graph",
    "double_diamond_instance",
    "enumerate_round_configurations",
    "execute_request",
    "explain_schedule",
    "forced_precedence_graph",
    "functional_cycle",
    "functional_graph",
    "greedy_deadlock_certificate",
    "greedy_joint_schedule",
    "greedy_slf_schedule",
    "hardness_profile",
    "infeasibility_certificate",
    "is_feasible",
    "is_order_forced",
    "is_round_safe",
    "merge_isolated_schedules",
    "minimal_round_count",
    "minimal_round_schedule",
    "oneshot_schedule",
    "oracle_for",
    "peacock_schedule",
    "phases_for_round",
    "register_scheduler",
    "resolve_scheduler",
    "reversal_instance",
    "round_is_safe",
    "round_is_safe_reference",
    "round_time_breakdown",
    "rounds_lower_bound",
    "sawtooth_instance",
    "schedule_update",
    "schedule_update_time",
    "scheduler_names",
    "sequential_schedule",
    "strongest_feasible_schedule",
    "symmetry_classes",
    "time_limit",
    "trace_walk",
    "two_phase_schedule",
    "two_phase_update_time",
    "unlock_constraints",
    "unsafe_alone",
    "verify_exhaustive",
    "verify_joint_round",
    "verify_joint_schedule",
    "verify_round",
    "verify_schedule",
    "waypoint_slalom_instance",
    "wayup_schedule",
]

#: The built-in scheduler registry contents (canonical names).
REGISTRY_NAMES = [
    "combined",
    "greedy-slf",
    "oneshot",
    "optimal",
    "peacock",
    "sequential",
    "strongest",
    "two-phase",
    "wayup",
]

#: Alias spellings that must keep resolving (one spelling everywhere,
#: but old spellings never break).
REGISTRY_ALIASES = {
    "greedy_slf": "greedy-slf",
    "greedy": "greedy-slf",
    "minimal": "optimal",
    "one-shot": "oneshot",
    "two_phase": "two-phase",
    "twophase": "two-phase",
    "way-up": "wayup",
}


class TestSurfaceSnapshot:
    def test_repro_all_is_pinned(self):
        assert sorted(repro.__all__) == REPRO_ALL

    def test_core_all_is_pinned(self):
        assert sorted(repro.core.__all__) == CORE_ALL

    def test_every_pinned_name_resolves(self):
        for name in REPRO_ALL:
            assert hasattr(repro, name), f"repro.{name} missing"
        for name in CORE_ALL:
            assert hasattr(repro.core, name), f"repro.core.{name} missing"

    def test_registry_names_are_pinned(self):
        assert repro.scheduler_names() == REGISTRY_NAMES

    def test_registry_aliases_are_pinned(self):
        aliases = repro.core.SCHEDULER_REGISTRY.aliases()
        for alias, canonical in REGISTRY_ALIASES.items():
            assert aliases.get(alias) == canonical, alias
